package mpicore

import (
	"repro/internal/ops"
	"repro/internal/simnet"
	"repro/internal/trace"
	"repro/internal/types"
)

// collNow reads the rank clock only when tracing is on; it pairs with
// collRound to bracket one collective round. The untraced path is a
// single pointer compare.
func (p *Proc) collNow() simnet.Time {
	if p.tr != nil {
		return p.ep.Clock().Now()
	}
	return 0
}

// collRound emits one completed collective-round span — a nested slice
// under the algorithm's Begin/End bracket — from the clock captured by
// collNow to now.
func (p *Proc) collRound(name string, t0 simnet.Time, peer int, tag int32) {
	if tr := p.tr; tr != nil {
		tr.Span(trace.CatColl, name, t0, p.ep.Clock().Now(),
			trace.Arg{Key: "peer", Val: trace.Itoa(peer)},
			trace.Arg{Key: "tag", Val: trace.Itoa(int(tag))})
	}
}

// Policy is one implementation's algorithm personality: the protocol
// switchover, its context-id derivation stream, and a selection function
// per collective. The selections are where the simulated implementations
// legitimately differ (MPICH's binomial/Rabenseifner/Bruck thresholds vs
// Open MPI's tuned binary/chain/ring thresholds); everything a selection
// can pick from is implemented once, below.
type Policy struct {
	// EagerMax is the eager/rendezvous protocol switchover in bytes.
	EagerMax int
	// DeriveCID derives a child communicator's context id from the
	// parent's id and a creation ordinal (see FNV1aCIDDeriver and
	// SaltedCIDDeriver).
	DeriveCID func(parent, ordinal uint32) uint32

	// Collective algorithm selections. Each receives validated,
	// pre-packed inputs from the generic wrappers; tag is the reserved
	// tag block for this collective call.
	Barrier   func(p *Proc, c *Comm, tag int32) int
	Bcast     func(p *Proc, c *Comm, packed []byte, root int, tag int32) int
	Reduce    func(p *Proc, c *Comm, acc []byte, o *Op, k types.Kind, root int, tag int32) int
	Allreduce func(p *Proc, c *Comm, acc []byte, o *Op, k types.Kind, tag int32) int
	// Gather fills region (n blocks, absolute rank order, root only) from
	// every rank's own packed block. Scatter is its inverse: it
	// distributes region (absolute order, root only) and returns the
	// caller's block. Allgather fills region (own block pre-placed at
	// MyPos) on every rank. Alltoall moves out (packed per destination)
	// into in (packed per source).
	Gather    func(p *Proc, c *Comm, own, region []byte, blockSz, root int, tag int32) int
	Scatter   func(p *Proc, c *Comm, region []byte, blockSz, root int, tag int32) ([]byte, int)
	Allgather func(p *Proc, c *Comm, region []byte, blockSz int, tag int32) int
	Alltoall  func(p *Proc, c *Comm, out, in []byte, blockSz int, tag int32) int
}

// NextCollTag reserves a tag block for one collective call on c. Each
// call gets 64 tag values (rounds 0..63); successive collectives on the
// same communicator never share tags.
func (p *Proc) NextCollTag(c *Comm) int32 {
	c.CollSeq++
	return int32((c.CollSeq & 0x00ffffff) << 6)
}

// CollSend sends packed bytes to a communicator rank on the collective
// context, blocking until the payload is handed to the fabric. A dead
// peer fails the collective with ErrProcFailed instead of silently
// dropping a round on the floor (the hang ULFM's detection replaces).
func (p *Proc) CollSend(c *Comm, peer int, tag int32, data []byte) int {
	if p.ft.Failed(c.Ranks[peer]) {
		return p.E.ErrProcFailed
	}
	t0 := p.collNow()
	// data is a caller-owned buffer the algorithm may keep folding into
	// after this call returns, so the fabric's defensive copy stays
	// (owned=false) — see Request.owned.
	r := p.sendInternal(data, c.Ranks[peer], tag, c.CID|collCIDBit, false)
	for r != nil && !r.done {
		if code := p.Progress(true); code != p.E.Success {
			return code
		}
	}
	if r != nil {
		code := r.code
		p.putReq(r)
		if code == p.E.Success {
			p.collRound("coll-send", t0, peer, tag)
		}
		return code
	}
	p.collRound("coll-send", t0, peer, tag)
	return p.E.Success
}

// CollRecvPost posts a raw receive on the collective context without
// waiting.
func (p *Proc) CollRecvPost(c *Comm, peer int, tag int32) *Request {
	r := p.getReq()
	r.kind = reqRecv
	r.comm = c
	r.raw = true
	r.srcWorld = c.Ranks[peer]
	r.tag = int(tag)
	r.cid = c.CID | collCIDBit
	p.postRecv(r)
	return r
}

// CollRecv blocks for a packed message from a communicator rank on the
// collective context.
func (p *Proc) CollRecv(c *Comm, peer int, tag int32) ([]byte, int) {
	t0 := p.collNow()
	r := p.CollRecvPost(c, peer, tag)
	for !r.done {
		if code := p.Progress(true); code != p.E.Success {
			return nil, code
		}
	}
	out, code := r.rawOut, r.code
	p.putReq(r)
	if code == p.E.Success {
		p.collRound("coll-recv", t0, peer, tag)
	}
	return out, code
}

// CollExchange posts the receive before sending, making symmetric
// pairwise exchanges deadlock-free even on the rendezvous path.
func (p *Proc) CollExchange(c *Comm, sendTo, recvFrom int, tag int32, data []byte) ([]byte, int) {
	t0 := p.collNow()
	r := p.CollRecvPost(c, recvFrom, tag)
	if code := p.CollSend(c, sendTo, tag, data); code != p.E.Success {
		return nil, code
	}
	for !r.done {
		if code := p.Progress(true); code != p.E.Success {
			return nil, code
		}
	}
	out, code := r.rawOut, r.code
	p.putReq(r)
	if code == p.E.Success {
		p.collRound("coll-exchange", t0, sendTo, tag)
	}
	return out, code
}

// ReduceKind extracts the uniform primitive kind needed for a reduction.
func (p *Proc) ReduceKind(dt *Type) (types.Kind, int) {
	k, ok := dt.T.PrimKind()
	if !ok {
		return types.KindInvalid, p.E.ErrType
	}
	return k, p.E.Success
}

// Fold folds in into acc (packed buffers of the same uniform kind).
func (p *Proc) Fold(o *Op, k types.Kind, acc, in []byte) int {
	count := len(acc) / k.Size()
	if o.User != "" {
		fn, _, err := ops.LookupUser(o.User)
		if err != nil {
			return p.E.ErrOp
		}
		fn(acc, in, k, count)
		return p.E.Success
	}
	if err := ops.Apply(o.Op, k, acc, in, count); err != nil {
		return p.E.ErrOp
	}
	return p.E.Success
}

// OpDefined checks operator/kind compatibility including user ops (which
// accept any uniform kind).
func OpDefined(o *Op, k types.Kind) bool {
	if o.User != "" {
		return true
	}
	return ops.Compatible(o.Op, k)
}

// ---------------------------------------------------------------------------
// Generic wrappers: validation, packing and unpacking are identical in
// every implementation; only the policy's algorithm selection differs.
// ---------------------------------------------------------------------------

// Barrier blocks until every member of c has entered it.
func (p *Proc) Barrier(c *Comm) int {
	if c == nil {
		return p.E.ErrComm
	}
	if p.ft.Revoked(c.CID) {
		return p.E.ErrRevoked
	}
	if c.Size() == 1 {
		return p.E.Success
	}
	tag := p.NextCollTag(c)
	return p.pol.Barrier(p, c, tag)
}

// Bcast broadcasts count elements of dt from root.
func (p *Proc) Bcast(buf []byte, count int, dt *Type, root int, c *Comm) int {
	if code := p.checkCommType(c, dt); code != p.E.Success {
		return code
	}
	if root < 0 || root >= c.Size() {
		return p.E.ErrRoot
	}
	if count < 0 {
		return p.E.ErrCount
	}
	n, me := c.Size(), c.MyPos
	nbytes := count * dt.T.Size()
	if n == 1 || nbytes == 0 {
		return p.E.Success
	}
	tag := p.NextCollTag(c)
	var packed []byte
	if me == root {
		var code int
		if packed, code = p.PackElems(dt, buf, count); code != p.E.Success {
			return code
		}
	} else {
		packed = make([]byte, nbytes)
	}
	if code := p.pol.Bcast(p, c, packed, root, tag); code != p.E.Success {
		return code
	}
	if me != root {
		if _, err := dt.T.Unpack(packed, count, buf); err != nil {
			return p.E.ErrBuffer
		}
	}
	return p.E.Success
}

// Reduce folds every rank's contribution into recvbuf at root.
func (p *Proc) Reduce(sendbuf, recvbuf []byte, count int, dt *Type, o *Op, root int, c *Comm) int {
	if code := p.checkCommType(c, dt); code != p.E.Success {
		return code
	}
	if o == nil {
		return p.E.ErrOp
	}
	if root < 0 || root >= c.Size() {
		return p.E.ErrRoot
	}
	if count < 0 {
		return p.E.ErrCount
	}
	k, code := p.ReduceKind(dt)
	if code != p.E.Success {
		return code
	}
	if !OpDefined(o, k) {
		return p.E.ErrOp
	}
	acc, code := p.PackElems(dt, sendbuf, count)
	if code != p.E.Success {
		return code
	}
	tag := p.NextCollTag(c)
	if code := p.pol.Reduce(p, c, acc, o, k, root, tag); code != p.E.Success {
		return code
	}
	if c.MyPos == root && count > 0 {
		if _, err := dt.T.Unpack(acc, count, recvbuf); err != nil {
			return p.E.ErrBuffer
		}
	}
	return p.E.Success
}

// Allreduce folds every rank's contribution into recvbuf on every rank.
func (p *Proc) Allreduce(sendbuf, recvbuf []byte, count int, dt *Type, o *Op, c *Comm) int {
	if code := p.checkCommType(c, dt); code != p.E.Success {
		return code
	}
	if o == nil {
		return p.E.ErrOp
	}
	if count < 0 {
		return p.E.ErrCount
	}
	k, code := p.ReduceKind(dt)
	if code != p.E.Success {
		return code
	}
	if !OpDefined(o, k) {
		return p.E.ErrOp
	}
	acc, code := p.PackElems(dt, sendbuf, count)
	if code != p.E.Success {
		return code
	}
	tag := p.NextCollTag(c)
	if c.Size() > 1 && len(acc) > 0 {
		if code := p.pol.Allreduce(p, c, acc, o, k, tag); code != p.E.Success {
			return code
		}
	}
	if count > 0 {
		if _, err := dt.T.Unpack(acc, count, recvbuf); err != nil {
			return p.E.ErrBuffer
		}
	}
	return p.E.Success
}

// Gather collects every rank's scount elements at root.
func (p *Proc) Gather(sendbuf []byte, scount int, stype *Type,
	recvbuf []byte, rcount int, rtype *Type, root int, c *Comm) int {
	if code := p.checkCommType(c, stype); code != p.E.Success {
		return code
	}
	if root < 0 || root >= c.Size() {
		return p.E.ErrRoot
	}
	if scount < 0 || rcount < 0 {
		return p.E.ErrCount
	}
	n, me := c.Size(), c.MyPos
	blockSz := scount * stype.T.Size()
	own, code := p.PackElems(stype, sendbuf, scount)
	if code != p.E.Success {
		return code
	}
	if own == nil {
		own = make([]byte, blockSz)
	}
	// Reserve the tag block before any validation that only the root
	// performs: every member must advance CollSeq in lockstep, or a
	// root-side argument error would silently desynchronize the tag
	// stream for every later collective on this communicator.
	tag := p.NextCollTag(c)
	var region []byte
	if me == root {
		if rtype == nil || !rtype.T.Committed() {
			return p.E.ErrType
		}
		if rcount*rtype.T.Size() != blockSz {
			return p.E.ErrTruncate
		}
		region = make([]byte, n*blockSz)
	}
	if code := p.pol.Gather(p, c, own, region, blockSz, root, tag); code != p.E.Success {
		return code
	}
	if me == root && blockSz > 0 {
		for r := 0; r < n; r++ {
			if _, err := rtype.T.Unpack(region[r*blockSz:(r+1)*blockSz], rcount,
				recvbuf[r*rcount*rtype.T.Extent():]); err != nil {
				return p.E.ErrBuffer
			}
		}
	}
	return p.E.Success
}

// Scatter distributes root's n blocks of scount elements.
func (p *Proc) Scatter(sendbuf []byte, scount int, stype *Type,
	recvbuf []byte, rcount int, rtype *Type, root int, c *Comm) int {
	if code := p.checkCommType(c, rtype); code != p.E.Success {
		return code
	}
	if root < 0 || root >= c.Size() {
		return p.E.ErrRoot
	}
	if scount < 0 || rcount < 0 {
		return p.E.ErrCount
	}
	n, me := c.Size(), c.MyPos
	blockSz := rcount * rtype.T.Size()
	// Tag reservation precedes the root-only validation; see Gather.
	tag := p.NextCollTag(c)
	var region []byte
	if me == root {
		if stype == nil || !stype.T.Committed() {
			return p.E.ErrType
		}
		if scount*stype.T.Size() != blockSz {
			return p.E.ErrTruncate
		}
		region = make([]byte, n*blockSz)
		for r := 0; r < n; r++ {
			if _, err := stype.T.Pack(sendbuf[r*scount*stype.T.Extent():], scount,
				region[r*blockSz:(r+1)*blockSz]); err != nil && scount > 0 {
				return p.E.ErrBuffer
			}
		}
	}
	own, code := p.pol.Scatter(p, c, region, blockSz, root, tag)
	if code != p.E.Success {
		return code
	}
	if blockSz == 0 {
		return p.E.Success
	}
	if _, err := rtype.T.Unpack(own, rcount, recvbuf); err != nil {
		return p.E.ErrBuffer
	}
	return p.E.Success
}

// Allgather collects every rank's block on every rank.
func (p *Proc) Allgather(sendbuf []byte, scount int, stype *Type,
	recvbuf []byte, rcount int, rtype *Type, c *Comm) int {
	if code := p.checkCommType(c, stype); code != p.E.Success {
		return code
	}
	if rtype == nil || !rtype.T.Committed() {
		return p.E.ErrType
	}
	n, me := c.Size(), c.MyPos
	blockSz := scount * stype.T.Size()
	if rcount*rtype.T.Size() != blockSz {
		return p.E.ErrTruncate
	}
	region := make([]byte, n*blockSz)
	if blockSz > 0 {
		if _, err := stype.T.Pack(sendbuf, scount, region[me*blockSz:(me+1)*blockSz]); err != nil {
			return p.E.ErrBuffer
		}
	}
	tag := p.NextCollTag(c)
	if n > 1 && blockSz > 0 {
		if code := p.pol.Allgather(p, c, region, blockSz, tag); code != p.E.Success {
			return code
		}
	}
	for r := 0; r < n && blockSz > 0; r++ {
		if _, err := rtype.T.Unpack(region[r*blockSz:(r+1)*blockSz], rcount,
			recvbuf[r*rcount*rtype.T.Extent():]); err != nil {
			return p.E.ErrBuffer
		}
	}
	return p.E.Success
}

// Alltoall exchanges distinct blocks between every pair of ranks.
func (p *Proc) Alltoall(sendbuf []byte, scount int, stype *Type,
	recvbuf []byte, rcount int, rtype *Type, c *Comm) int {
	if code := p.checkCommType(c, stype); code != p.E.Success {
		return code
	}
	if rtype == nil || !rtype.T.Committed() {
		return p.E.ErrType
	}
	if scount < 0 || rcount < 0 {
		return p.E.ErrCount
	}
	n := c.Size()
	blockSz := scount * stype.T.Size()
	if rcount*rtype.T.Size() != blockSz {
		return p.E.ErrTruncate
	}
	out := make([]byte, n*blockSz)
	for d := 0; d < n; d++ {
		if _, err := stype.T.Pack(sendbuf[d*scount*stype.T.Extent():], scount,
			out[d*blockSz:(d+1)*blockSz]); err != nil && scount > 0 {
			return p.E.ErrBuffer
		}
	}
	in := make([]byte, n*blockSz)
	tag := p.NextCollTag(c)
	if n == 1 || blockSz == 0 {
		copy(in, out)
	} else if code := p.pol.Alltoall(p, c, out, in, blockSz, tag); code != p.E.Success {
		return code
	}
	for r := 0; r < n; r++ {
		if _, err := rtype.T.Unpack(in[r*blockSz:(r+1)*blockSz], rcount,
			recvbuf[r*rcount*rtype.T.Extent():]); err != nil {
			return p.E.ErrBuffer
		}
	}
	return p.E.Success
}

// ---------------------------------------------------------------------------
// The algorithm set. Each implementation's Policy composes these with its
// own thresholds.
// ---------------------------------------------------------------------------

// BarrierDissemination is MPICH's dissemination barrier: ceil(log2 n)
// rounds of token exchanges at power-of-two distances.
func (p *Proc) BarrierDissemination(c *Comm, tag int32) int {
	p.collBegin("BarrierDissemination")
	defer p.collEnd("BarrierDissemination")
	n, me := c.Size(), c.MyPos
	round := int32(0)
	for mask := 1; mask < n; mask <<= 1 {
		to := (me + mask) % n
		from := (me - mask + n) % n
		if _, code := p.CollExchange(c, to, from, tag+round, nil); code != p.E.Success {
			return code
		}
		round++
	}
	return p.E.Success
}

// BarrierRDFold is the tuned recursive-doubling barrier with a fold for
// non-power-of-two sizes (Open MPI's default for mid-size communicators).
func (p *Proc) BarrierRDFold(c *Comm, tag int32) int {
	p.collBegin("BarrierRDFold")
	defer p.collEnd("BarrierRDFold")
	n, me := c.Size(), c.MyPos
	pof2 := 1
	for pof2*2 <= n {
		pof2 *= 2
	}
	rem := n - pof2
	newrank := -1
	switch {
	case me < 2*rem && me%2 == 0:
		if code := p.CollSend(c, me+1, tag, nil); code != p.E.Success {
			return code
		}
	case me < 2*rem:
		if _, code := p.CollRecv(c, me-1, tag); code != p.E.Success {
			return code
		}
		newrank = me / 2
	default:
		newrank = me - rem
	}
	if newrank != -1 {
		round := int32(1)
		for mask := 1; mask < pof2; mask <<= 1 {
			pn := newrank ^ mask
			partner := pn + rem
			if pn < rem {
				partner = pn*2 + 1
			}
			if _, code := p.CollExchange(c, partner, partner, tag+round, nil); code != p.E.Success {
				return code
			}
			round++
		}
	}
	if me < 2*rem {
		if me%2 != 0 {
			return p.CollSend(c, me-1, tag+63, nil)
		}
		if _, code := p.CollRecv(c, me+1, tag+63); code != p.E.Success {
			return code
		}
	}
	return p.E.Success
}

// BcastBinomial is the binomial-tree broadcast over relative ranks.
func (p *Proc) BcastBinomial(c *Comm, packed []byte, root int, tag int32) int {
	p.collBegin("BcastBinomial")
	defer p.collEnd("BcastBinomial")
	n, me := c.Size(), c.MyPos
	rel := (me - root + n) % n
	abs := func(r int) int { return (r + root) % n }
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			data, code := p.CollRecv(c, abs(rel-mask), tag)
			if code != p.E.Success {
				return code
			}
			copy(packed, data)
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if rel+mask < n {
			if code := p.CollSend(c, abs(rel+mask), tag, packed); code != p.E.Success {
				return code
			}
		}
	}
	return p.E.Success
}

// ChunkBounds splits nbytes into n nearly-equal chunks; chunk i spans
// [off[i], off[i+1]).
func ChunkBounds(nbytes, n int) []int {
	off := make([]int, n+1)
	base, rem := nbytes/n, nbytes%n
	for i := 0; i < n; i++ {
		sz := base
		if i < rem {
			sz++
		}
		off[i+1] = off[i] + sz
	}
	return off
}

// BcastScatterRing scatters the buffer binomially over relative ranks and
// reassembles with a ring allgather, MPICH's long-message broadcast.
func (p *Proc) BcastScatterRing(c *Comm, packed []byte, root int, tag int32) int {
	p.collBegin("BcastScatterRing")
	defer p.collEnd("BcastScatterRing")
	n, me := c.Size(), c.MyPos
	rel := (me - root + n) % n
	abs := func(r int) int { return (r + root) % n }
	off := ChunkBounds(len(packed), n)

	// Binomial scatter: the holder of relative range [rel, rel+mask) hands
	// the upper half to its child.
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			data, code := p.CollRecv(c, abs(rel-mask), tag)
			if code != p.E.Success {
				return code
			}
			copy(packed[off[rel]:], data)
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if rel+mask < n {
			hi := rel + 2*mask
			if hi > n {
				hi = n
			}
			child := rel + mask
			if code := p.CollSend(c, abs(child), tag, packed[off[child]:off[hi]]); code != p.E.Success {
				return code
			}
		}
	}

	// Ring allgather of the n chunks over relative ranks.
	for s := 0; s < n-1; s++ {
		sendChunk := (rel - s + n) % n
		recvChunk := (rel - s - 1 + n) % n
		data, code := p.CollExchange(c, abs((rel+1)%n), abs((rel-1+n)%n),
			tag+1, packed[off[sendChunk]:off[sendChunk+1]])
		if code != p.E.Success {
			return code
		}
		copy(packed[off[recvChunk]:off[recvChunk+1]], data)
	}
	return p.E.Success
}

// BcastBinaryTree broadcasts down an in-order binary tree over relative
// ranks: children of relative node r are 2r+1 and 2r+2.
func (p *Proc) BcastBinaryTree(c *Comm, packed []byte, root int, tag int32) int {
	p.collBegin("BcastBinaryTree")
	defer p.collEnd("BcastBinaryTree")
	n, me := c.Size(), c.MyPos
	rel := (me - root + n) % n
	abs := func(r int) int { return (r + root) % n }
	if rel != 0 {
		parent := (rel - 1) / 2
		data, code := p.CollRecv(c, abs(parent), tag)
		if code != p.E.Success {
			return code
		}
		copy(packed, data)
	}
	for _, child := range []int{2*rel + 1, 2*rel + 2} {
		if child < n {
			if code := p.CollSend(c, abs(child), tag, packed); code != p.E.Success {
				return code
			}
		}
	}
	return p.E.Success
}

// BcastChain pipelines segSize segments down the rank chain
// root -> root+1 -> ... -> root+n-1 (relative order).
func (p *Proc) BcastChain(c *Comm, packed []byte, root int, tag int32, segSize int) int {
	p.collBegin("BcastChain")
	defer p.collEnd("BcastChain")
	n, me := c.Size(), c.MyPos
	rel := (me - root + n) % n
	abs := func(r int) int { return (r + root) % n }
	nseg := (len(packed) + segSize - 1) / segSize
	for s := 0; s < nseg; s++ {
		lo := s * segSize
		hi := lo + segSize
		if hi > len(packed) {
			hi = len(packed)
		}
		if rel != 0 {
			data, code := p.CollRecv(c, abs(rel-1), tag)
			if code != p.E.Success {
				return code
			}
			copy(packed[lo:hi], data)
		}
		if rel != n-1 {
			if code := p.CollSend(c, abs(rel+1), tag, packed[lo:hi]); code != p.E.Success {
				return code
			}
		}
	}
	return p.E.Success
}

// ReduceBinomial folds up a binomial tree over relative ranks
// (commutative operators), MPICH's selection.
func (p *Proc) ReduceBinomial(c *Comm, acc []byte, o *Op, k types.Kind, root int, tag int32) int {
	p.collBegin("ReduceBinomial")
	defer p.collEnd("ReduceBinomial")
	n, me := c.Size(), c.MyPos
	rel := (me - root + n) % n
	abs := func(r int) int { return (r + root) % n }
	for mask := 1; mask < n; mask <<= 1 {
		if rel&mask == 0 {
			childRel := rel | mask
			if childRel < n {
				data, code := p.CollRecv(c, abs(childRel), tag)
				if code != p.E.Success {
					return code
				}
				if code := p.Fold(o, k, acc, data); code != p.E.Success {
					return code
				}
			}
		} else {
			if code := p.CollSend(c, abs(rel-mask), tag, acc); code != p.E.Success {
				return code
			}
			break
		}
	}
	return p.E.Success
}

// ReduceBinaryTree folds up an in-order binary tree over relative ranks,
// Open MPI's selection.
func (p *Proc) ReduceBinaryTree(c *Comm, acc []byte, o *Op, k types.Kind, root int, tag int32) int {
	p.collBegin("ReduceBinaryTree")
	defer p.collEnd("ReduceBinaryTree")
	n, me := c.Size(), c.MyPos
	rel := (me - root + n) % n
	abs := func(r int) int { return (r + root) % n }
	for _, child := range []int{2*rel + 1, 2*rel + 2} {
		if child < n {
			data, code := p.CollRecv(c, abs(child), tag)
			if code != p.E.Success {
				return code
			}
			if code := p.Fold(o, k, acc, data); code != p.E.Success {
				return code
			}
		}
	}
	if rel != 0 {
		parent := (rel - 1) / 2
		if code := p.CollSend(c, abs(parent), tag, acc); code != p.E.Success {
			return code
		}
	}
	return p.E.Success
}

// AllreduceRecDoubling handles any communicator size by folding the
// non-power-of-two remainder into the nearest power of two first.
// unfoldRound is the tag round of the final unfold exchange (the two
// historical implementations use different rounds; the difference is
// preserved so wire traces stay stable).
func (p *Proc) AllreduceRecDoubling(c *Comm, acc []byte, o *Op, k types.Kind, tag int32, unfoldRound int32) int {
	p.collBegin("AllreduceRecDoubling")
	defer p.collEnd("AllreduceRecDoubling")
	n, me := c.Size(), c.MyPos
	pof2 := 1
	for pof2*2 <= n {
		pof2 *= 2
	}
	rem := n - pof2
	newrank := -1
	switch {
	case me < 2*rem && me%2 == 0:
		if code := p.CollSend(c, me+1, tag, acc); code != p.E.Success {
			return code
		}
	case me < 2*rem: // odd rank in the folded region
		data, code := p.CollRecv(c, me-1, tag)
		if code != p.E.Success {
			return code
		}
		if code := p.Fold(o, k, acc, data); code != p.E.Success {
			return code
		}
		newrank = me / 2
	default:
		newrank = me - rem
	}
	if newrank != -1 {
		round := int32(1)
		for mask := 1; mask < pof2; mask <<= 1 {
			partnerNew := newrank ^ mask
			partner := partnerNew + rem
			if partnerNew < rem {
				partner = partnerNew*2 + 1
			}
			data, code := p.CollExchange(c, partner, partner, tag+round, acc)
			if code != p.E.Success {
				return code
			}
			if code := p.Fold(o, k, acc, data); code != p.E.Success {
				return code
			}
			round++
		}
	}
	// Unfold: odd folded ranks return results to their even partners.
	if me < 2*rem {
		if me%2 != 0 {
			return p.CollSend(c, me-1, tag+unfoldRound, acc)
		}
		data, code := p.CollRecv(c, me+1, tag+unfoldRound)
		if code != p.E.Success {
			return code
		}
		copy(acc, data)
	}
	return p.E.Success
}

// AllreduceRabenseifner is the long-message reduce-scatter plus allgather
// algorithm for power-of-two communicators (MPICH's selection).
func (p *Proc) AllreduceRabenseifner(c *Comm, acc []byte, o *Op, k types.Kind, tag int32) int {
	p.collBegin("AllreduceRabenseifner")
	defer p.collEnd("AllreduceRabenseifner")
	n, me := c.Size(), c.MyPos
	es := k.Size()
	elems := len(acc) / es
	type span struct{ lo, hi int }
	var stack []span
	cur := span{0, elems}
	round := int32(0)
	// Reduce-scatter by recursive halving.
	for dist := n / 2; dist >= 1; dist /= 2 {
		partner := me ^ dist
		mid := (cur.lo + cur.hi) / 2
		var keep, give span
		if me < partner {
			keep, give = span{cur.lo, mid}, span{mid, cur.hi}
		} else {
			keep, give = span{mid, cur.hi}, span{cur.lo, mid}
		}
		data, code := p.CollExchange(c, partner, partner, tag+round, acc[give.lo*es:give.hi*es])
		if code != p.E.Success {
			return code
		}
		if code := p.Fold(o, k, acc[keep.lo*es:keep.hi*es], data); code != p.E.Success {
			return code
		}
		stack = append(stack, cur)
		cur = keep
		round++
	}
	// Allgather by recursive doubling, unwinding the halving stack.
	for dist := 1; dist < n; dist *= 2 {
		partner := me ^ dist
		parent := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		data, code := p.CollExchange(c, partner, partner, tag+round, acc[cur.lo*es:cur.hi*es])
		if code != p.E.Success {
			return code
		}
		// Partner owned the complementary half of the parent span.
		if cur.lo == parent.lo {
			copy(acc[cur.hi*es:parent.hi*es], data)
		} else {
			copy(acc[parent.lo*es:cur.lo*es], data)
		}
		cur = parent
		round++
	}
	return p.E.Success
}

// AllreduceRing is the bandwidth-optimal ring: n-1 reduce-scatter steps
// followed by n-1 allgather steps over element chunks (Open MPI's
// long-message selection).
func (p *Proc) AllreduceRing(c *Comm, acc []byte, o *Op, k types.Kind, tag int32) int {
	p.collBegin("AllreduceRing")
	defer p.collEnd("AllreduceRing")
	n, me := c.Size(), c.MyPos
	es := k.Size()
	elems := len(acc) / es
	off := ChunkBounds(elems, n)
	right := (me + 1) % n
	left := (me - 1 + n) % n
	chunk := func(i int) []byte { return acc[off[i]*es : off[i+1]*es] }
	// Reduce-scatter ring.
	for s := 0; s < n-1; s++ {
		sendIdx := (me - s + n) % n
		recvIdx := (me - s - 1 + n) % n
		data, code := p.CollExchange(c, right, left, tag, chunk(sendIdx))
		if code != p.E.Success {
			return code
		}
		if code := p.Fold(o, k, chunk(recvIdx), data); code != p.E.Success {
			return code
		}
	}
	// Allgather ring.
	for s := 0; s < n-1; s++ {
		sendIdx := (me + 1 - s + n) % n
		recvIdx := (me - s + n) % n
		data, code := p.CollExchange(c, right, left, tag+1, chunk(sendIdx))
		if code != p.E.Success {
			return code
		}
		copy(chunk(recvIdx), data)
	}
	return p.E.Success
}

// GatherBinomial aggregates subtree block ranges up a binomial tree over
// relative ranks (MPICH's selection), rotating into absolute order at the
// root.
func (p *Proc) GatherBinomial(c *Comm, own, region []byte, blockSz, root int, tag int32) int {
	p.collBegin("GatherBinomial")
	defer p.collEnd("GatherBinomial")
	n, me := c.Size(), c.MyPos
	rel := (me - root + n) % n
	abs := func(r int) int { return (r + root) % n }
	work := make([]byte, n*blockSz)
	copy(work[:blockSz], own)
	span := 1
	mask := 1
	for mask < n {
		if rel&mask == 0 {
			childRel := rel + mask
			if childRel < n {
				data, code := p.CollRecv(c, abs(childRel), tag)
				if code != p.E.Success {
					return code
				}
				copy(work[span*blockSz:], data)
				childSpan := mask
				if childRel+childSpan > n {
					childSpan = n - childRel
				}
				span += childSpan
			}
		} else {
			return p.CollSend(c, abs(rel-mask), tag, work[:span*blockSz])
		}
		mask <<= 1
	}
	// Only the root reaches here. Unscramble relative order into region.
	for r := 0; r < n; r++ {
		relPos := (r - root + n) % n
		copy(region[r*blockSz:(r+1)*blockSz], work[relPos*blockSz:(relPos+1)*blockSz])
	}
	return p.E.Success
}

// GatherLinear is the basic linear gather with nonblocking overlap: the
// root posts every receive, then drains (Open MPI's selection).
func (p *Proc) GatherLinear(c *Comm, own, region []byte, blockSz, root int, tag int32) int {
	p.collBegin("GatherLinear")
	defer p.collEnd("GatherLinear")
	n, me := c.Size(), c.MyPos
	if me != root {
		return p.CollSend(c, root, tag, own)
	}
	reqs := make([]*Request, n)
	for r := 0; r < n; r++ {
		if r == me {
			continue
		}
		reqs[r] = p.CollRecvPost(c, r, tag)
	}
	for r := 0; r < n; r++ {
		var data []byte
		if r == me {
			data = own
		} else {
			for !reqs[r].done {
				if code := p.Progress(true); code != p.E.Success {
					return code
				}
			}
			if reqs[r].code != p.E.Success {
				return reqs[r].code
			}
			data = reqs[r].rawOut
		}
		copy(region[r*blockSz:(r+1)*blockSz], data)
	}
	return p.E.Success
}

// ScatterBinomial distributes region down a binomial tree over relative
// ranks (MPICH's selection), returning the caller's block.
func (p *Proc) ScatterBinomial(c *Comm, region []byte, blockSz, root int, tag int32) ([]byte, int) {
	p.collBegin("ScatterBinomial")
	defer p.collEnd("ScatterBinomial")
	n, me := c.Size(), c.MyPos
	rel := (me - root + n) % n
	abs := func(r int) int { return (r + root) % n }
	work := make([]byte, n*blockSz)
	if me == root {
		// Rotate into relative order.
		for r := 0; r < n; r++ {
			relPos := (r - root + n) % n
			copy(work[relPos*blockSz:(relPos+1)*blockSz], region[r*blockSz:(r+1)*blockSz])
		}
	}
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			mySpan := mask
			if rel+mySpan > n {
				mySpan = n - rel
			}
			data, code := p.CollRecv(c, abs(rel-mask), tag)
			if code != p.E.Success {
				return nil, code
			}
			copy(work[rel*blockSz:(rel+mySpan)*blockSz], data)
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask >= 1; mask >>= 1 {
		if rel+mask < n {
			child := rel + mask
			hi := rel + 2*mask
			if hi > n {
				hi = n
			}
			if code := p.CollSend(c, abs(child), tag, work[child*blockSz:hi*blockSz]); code != p.E.Success {
				return nil, code
			}
		}
	}
	return work[rel*blockSz : (rel+1)*blockSz], p.E.Success
}

// ScatterLinear is the basic linear scatter: the root sends each block
// (Open MPI's selection).
func (p *Proc) ScatterLinear(c *Comm, region []byte, blockSz, root int, tag int32) ([]byte, int) {
	p.collBegin("ScatterLinear")
	defer p.collEnd("ScatterLinear")
	n, me := c.Size(), c.MyPos
	if me == root {
		for r := 0; r < n; r++ {
			if r == me {
				continue
			}
			if code := p.CollSend(c, r, tag, region[r*blockSz:(r+1)*blockSz]); code != p.E.Success {
				return nil, code
			}
		}
		return region[me*blockSz : (me+1)*blockSz], p.E.Success
	}
	data, code := p.CollRecv(c, root, tag)
	if code != p.E.Success {
		return nil, code
	}
	if data == nil {
		data = make([]byte, blockSz)
	}
	return data, p.E.Success
}

// AllgatherRecDoubling doubles the known block range each round
// (power-of-two communicators; MPICH's short-message selection).
func (p *Proc) AllgatherRecDoubling(c *Comm, region []byte, blockSz int, tag int32) int {
	p.collBegin("AllgatherRecDoubling")
	defer p.collEnd("AllgatherRecDoubling")
	n, me := c.Size(), c.MyPos
	round := int32(0)
	for dist := 1; dist < n; dist *= 2 {
		partner := me ^ dist
		myLo := me &^ (dist - 1)
		partnerLo := partner &^ (dist - 1)
		data, code := p.CollExchange(c, partner, partner, tag+round,
			region[myLo*blockSz:(myLo+dist)*blockSz])
		if code != p.E.Success {
			return code
		}
		copy(region[partnerLo*blockSz:], data)
		round++
	}
	return p.E.Success
}

// AllgatherRing rotates blocks around the ring for n-1 steps (the
// long-message workhorse both historical implementations share).
func (p *Proc) AllgatherRing(c *Comm, region []byte, blockSz int, tag int32) int {
	p.collBegin("AllgatherRing")
	defer p.collEnd("AllgatherRing")
	n, me := c.Size(), c.MyPos
	right := (me + 1) % n
	left := (me - 1 + n) % n
	for s := 0; s < n-1; s++ {
		sendBlock := (me - s + n) % n
		recvBlock := (me - s - 1 + n) % n
		data, code := p.CollExchange(c, right, left, tag,
			region[sendBlock*blockSz:(sendBlock+1)*blockSz])
		if code != p.E.Success {
			return code
		}
		copy(region[recvBlock*blockSz:(recvBlock+1)*blockSz], data)
	}
	return p.E.Success
}

// AllgatherBruck doubles the known prefix each round; block j of the
// working buffer holds rank (me+j)'s contribution until the final rotate
// (Open MPI's small-block selection).
func (p *Proc) AllgatherBruck(c *Comm, region []byte, blockSz int, tag int32) int {
	p.collBegin("AllgatherBruck")
	defer p.collEnd("AllgatherBruck")
	n, me := c.Size(), c.MyPos
	tmp := make([]byte, n*blockSz)
	copy(tmp[:blockSz], region[me*blockSz:(me+1)*blockSz])
	cnt := 1
	round := int32(0)
	for cnt < n {
		transfer := cnt
		if n-cnt < transfer {
			transfer = n - cnt
		}
		to := (me - cnt + n) % n
		from := (me + cnt) % n
		data, code := p.CollExchange(c, to, from, tag+round, tmp[:transfer*blockSz])
		if code != p.E.Success {
			return code
		}
		copy(tmp[cnt*blockSz:(cnt+transfer)*blockSz], data)
		cnt += transfer
		round++
	}
	for j := 0; j < n; j++ {
		src := (me + j) % n
		copy(region[src*blockSz:(src+1)*blockSz], tmp[j*blockSz:(j+1)*blockSz])
	}
	return p.E.Success
}

// AlltoallBruck runs in ceil(log2 n) rounds, each moving all blocks whose
// (rotated) index has the round's bit set.
func (p *Proc) AlltoallBruck(c *Comm, out, in []byte, blockSz int, tag int32) int {
	p.collBegin("AlltoallBruck")
	defer p.collEnd("AlltoallBruck")
	n, me := c.Size(), c.MyPos
	// Phase 1: local rotation; tmp[i] = block destined to (me+i) mod n.
	tmp := make([]byte, n*blockSz)
	for i := 0; i < n; i++ {
		d := (me + i) % n
		copy(tmp[i*blockSz:(i+1)*blockSz], out[d*blockSz:(d+1)*blockSz])
	}
	round := int32(0)
	scratch := make([]byte, n*blockSz)
	for pow := 1; pow < n; pow <<= 1 {
		var idxs []int
		for i := 0; i < n; i++ {
			if i&pow != 0 {
				idxs = append(idxs, i)
			}
		}
		sendbuf := scratch[:0]
		for _, i := range idxs {
			sendbuf = append(sendbuf, tmp[i*blockSz:(i+1)*blockSz]...)
		}
		to := (me + pow) % n
		from := (me - pow + n) % n
		data, code := p.CollExchange(c, to, from, tag+round, sendbuf)
		if code != p.E.Success {
			return code
		}
		for j, i := range idxs {
			copy(tmp[i*blockSz:(i+1)*blockSz], data[j*blockSz:(j+1)*blockSz])
		}
		round++
	}
	// Phase 3: block from source s sits at index (me-s+n) mod n.
	for s := 0; s < n; s++ {
		i := (me - s + n) % n
		copy(in[s*blockSz:(s+1)*blockSz], tmp[i*blockSz:(i+1)*blockSz])
	}
	return p.E.Success
}

// AlltoallOverlap posts every receive, starts every send nonblocking,
// then drains — maximal overlap across peers (MPICH's medium-message and
// Open MPI's basic-linear algorithm).
func (p *Proc) AlltoallOverlap(c *Comm, out, in []byte, blockSz int, tag int32) int {
	p.collBegin("AlltoallOverlap")
	defer p.collEnd("AlltoallOverlap")
	n, me := c.Size(), c.MyPos
	copy(in[me*blockSz:(me+1)*blockSz], out[me*blockSz:(me+1)*blockSz])
	recvs := make([]*Request, 0, n-1)
	for i := 1; i < n; i++ {
		from := (me - i + n) % n
		recvs = append(recvs, p.CollRecvPost(c, from, tag))
	}
	sends := make([]*Request, 0, n-1)
	for i := 1; i < n; i++ {
		to := (me + i) % n
		if s := p.sendInternal(out[to*blockSz:(to+1)*blockSz], c.Ranks[to], tag, c.CID|collCIDBit, false); s != nil {
			sends = append(sends, s)
		}
	}
	for i, r := range recvs {
		for !r.done {
			if code := p.Progress(true); code != p.E.Success {
				return code
			}
		}
		if r.code != p.E.Success {
			return r.code
		}
		from := (me - i - 1 + n) % n
		copy(in[from*blockSz:(from+1)*blockSz], r.rawOut)
	}
	for _, s := range sends {
		for !s.done {
			if code := p.Progress(true); code != p.E.Success {
				return code
			}
		}
	}
	return p.E.Success
}

// AlltoallPairwise exchanges with peers at increasing offsets; step k
// pairs rank r with r+k (send) and r-k (recv). MPICH's long-message
// selection.
func (p *Proc) AlltoallPairwise(c *Comm, out, in []byte, blockSz int, tag int32) int {
	p.collBegin("AlltoallPairwise")
	defer p.collEnd("AlltoallPairwise")
	n, me := c.Size(), c.MyPos
	copy(in[me*blockSz:(me+1)*blockSz], out[me*blockSz:(me+1)*blockSz])
	for k := 1; k < n; k++ {
		to := (me + k) % n
		from := (me - k + n) % n
		data, code := p.CollExchange(c, to, from, tag, out[to*blockSz:(to+1)*blockSz])
		if code != p.E.Success {
			return code
		}
		copy(in[from*blockSz:(from+1)*blockSz], data)
	}
	return p.E.Success
}
