// Package mpicore is the representation-agnostic MPI runtime shared by
// every simulated implementation in this repository. The paper's central
// observation — and the ABI working group's (Hammond et al., PAPERS.md) —
// is that MPI implementations differ at the ABI surface (handle
// representations, constant values, error-code numbering, status layout)
// while the runtime semantics underneath are common: request lifecycle and
// progress, point-to-point matching, communicator context ids, and the
// collective algorithms. This package is that common runtime made literal.
//
// An implementation package (internal/mpich, internal/openmpi,
// internal/stdabi) supplies three things:
//
//   - a Consts table: its native integer-constant vocabulary (wildcards,
//     PROC_NULL, TAG_UB, MPI_UNDEFINED);
//   - a Codes table: its native error-code numbering (MPICH's
//     MPI_ERR_ROOT is 7, Open MPI's is 8, the standard ABI's is
//     abi.ErrRoot);
//   - a Policy: its eager/rendezvous switchover, context-id derivation
//     stream, and collective algorithm selections (MPICH's
//     binomial/Rabenseifner/Bruck cutoffs vs Open MPI's tuned
//     binary/chain/ring cutoffs) built from the algorithm set this
//     package exports.
//
// Everything else — the object model (Comm, Group, Type, Op, Request),
// the progress engine, the protocols, the algorithms — is shared. What
// remains in each implementation package is exactly what the paper calls
// the ABI: handle encode/decode, constant values, status layout, error
// codes. That an entire third implementation (internal/stdabi) fits in a
// few hundred lines of such glue is the repository's executable form of
// the paper's "a standard ABI makes new interoperable implementations
// cheap" claim.
//
// In the README's layer diagram mpicore is the shared-runtime row —
// everything between the implementation packages and the fabric,
// including the replica layer behind Recovery="replicate"
// (docs/recovery.md): send duplication, receive dedup by replication
// sequence, and in-place shadow promotion, all beneath the communicator
// abstraction so no layer above can tell a replicated world apart.
package mpicore

import (
	"hash/fnv"

	"repro/internal/fabric"
	"repro/internal/ops"
	"repro/internal/trace"
	"repro/internal/types"
	"repro/internal/ulfm"
)

// Consts is an implementation's native integer-constant vocabulary. The
// runtime performs wildcard matching and argument validation directly in
// the implementation's own value space, so arguments cross the
// implementation boundary untranslated — exactly as they would inside a
// real MPI library.
type Consts struct {
	AnySource int
	AnyTag    int
	ProcNull  int
	TagUB     int
	Undefined int
}

// Codes is an implementation's native error-code table. The runtime
// returns these values directly (and embeds them in Status.Error), so an
// implementation's public API reports its own numbering without a
// translation pass — the numbering differences are part of each ABI and
// are preserved bit-for-bit.
type Codes struct {
	Success     int
	ErrBuffer   int
	ErrCount    int
	ErrType     int
	ErrTag      int
	ErrComm     int
	ErrRank     int
	ErrRoot     int
	ErrGroup    int
	ErrOp       int
	ErrArg      int
	ErrTruncate int
	ErrRequest  int
	ErrIntern   int
	ErrOther    int
	// ErrProcFailed and ErrRevoked are the ULFM (MPIX_*) error classes.
	// Real implementations number these beyond their classic tables —
	// and number them differently from each other, which is exactly the
	// cross-ABI divergence the translation layers must bridge.
	ErrProcFailed int
	ErrRevoked    int
}

// Status is the runtime's canonical receive-status record. Source is a
// communicator rank, Error carries the implementation's native code.
// Implementation layers convert this into their own status layouts
// (MPICH's split count words, Open MPI's public-fields-first record, the
// standard ABI's Status) at the API boundary — the layout is ABI, the
// contents are runtime.
type Status struct {
	Source     int32
	Tag        int32
	Error      int32
	CountBytes uint64
	Cancelled  bool
}

// Comm is a communicator: a context id, the comm-rank -> world-rank
// table, and the caller's position. CollSeq reserves per-collective tag
// blocks; ChldSeq numbers derived communicators for deterministic
// context-id agreement.
type Comm struct {
	CID     uint32
	Ranks   []int
	MyPos   int
	CollSeq uint32
	ChldSeq uint32
	// UlfmSeq numbers the ULFM collectives (Shrink, Agree) on this
	// communicator. It is deliberately separate from CollSeq: after a
	// failure, survivors may have attempted different numbers of regular
	// collectives (one rank's broadcast completed, its neighbor's
	// errored), so CollSeq diverges — but every survivor calls the ULFM
	// recovery collectives in the same order, so UlfmSeq is the counter
	// they still agree on, and the fault-tolerant tag blocks derive from
	// it (see nextFtTag).
	UlfmSeq uint32
}

// Size returns the communicator's size.
func (c *Comm) Size() int { return len(c.Ranks) }

// PosOf translates a world rank into a communicator rank, or -1.
func (c *Comm) PosOf(world int) int {
	for i, r := range c.Ranks {
		if r == world {
			return i
		}
	}
	return -1
}

// Group is a process group: group rank -> world rank, plus the caller's
// position (-1 when not a member).
type Group struct {
	Ranks []int
	MyPos int
}

// Type is a datatype object wrapping the shared type engine. Prim is the
// primitive kind for predefined types (KindInvalid for derived ones).
type Type struct {
	T    *types.Type
	Prim types.Kind
}

// Op is a reduction operator object. User names a registered user
// operator (see ops.RegisterUser); empty means the predefined Op.
type Op struct {
	Op      ops.Op
	User    string
	Commute bool
}

type reqKind uint8

const (
	reqRecv reqKind = iota
	reqSend
)

// Request is an in-flight operation. Implementation layers hold *Request
// (Open MPI style, where the pointer is the handle) or map their integer
// handles to it (MPICH style); its internals belong to the runtime.
type Request struct {
	kind reqKind
	done bool
	code int
	// ft marks fault-tolerant (ULFM shrink/agree) traffic: exempt from
	// revocation sweeps — ULFM's recovery collectives must keep working
	// on a revoked communicator — while still completing with the
	// proc-failed code when the peer is dead.
	ft bool

	// Receive bookkeeping.
	comm     *Comm
	buf      []byte
	count    int
	dt       *Type
	srcWorld int // matched source world rank, or the AnySource sentinel
	tag      int
	cid      uint32
	raw      bool   // collective-internal: deliver the packed payload
	rawOut   []byte // raw delivery target
	status   Status

	// Rendezvous send bookkeeping.
	payload []byte
	dest    int
	seq     uint64
	// owned marks a payload the sender handed over for good (a freshly
	// packed p2p buffer): the fabric may skip its defensive copy.
	// Collective accumulators, which the algorithms keep mutating after
	// the send, are never owned.
	owned bool
}

// Done reports request completion (used by implementation Test paths and
// diagnostics; completion is normally consumed through Wait/Test).
func (r *Request) Done() bool { return r.done }

type seqKey struct {
	peer int
	seq  uint64
}

// collCIDBit marks collective-internal traffic so it can never match
// application point-to-point receives on the same communicator. All
// implementations share the bit: it lives on the wire, below the ABI.
const collCIDBit uint32 = 1 << 31

// Proc is one rank's runtime instance — the common lower half of every
// simulated MPI library.
type Proc struct {
	ep    *fabric.Endpoint
	world *fabric.World
	rank  int
	size  int

	K   Consts
	E   Codes
	pol Policy

	// Predefined objects, shared with the implementation layer.
	CommWorld *Comm
	CommSelf  *Comm

	predefTypes map[types.Kind]*Type
	predefOps   map[ops.Op]*Op

	cidIndex map[uint32]*Comm

	posted       []*Request
	unexpected   []*fabric.Envelope
	pendingSend  map[uint64]*Request
	awaitingData map[seqKey]*Request
	nextRdvSeq   uint64

	// batch is Progress's reusable drain buffer (one mailbox lock hop
	// per burst instead of per message); batchPos is the next unserved
	// envelope in it. Dispatch never re-enters Progress, so a single
	// buffer per Proc suffices.
	batch    []*fabric.Envelope
	batchPos int
	// freeReqs recycles internal Request objects. The Proc is driven by
	// exactly one goroutine/fiber, so the freelist needs no lock.
	freeReqs []*Request

	// ft is the rank's ULFM state: known-failed ranks, revoked context
	// ids, per-communicator failure acknowledgements (see ulfm.go).
	ft *ulfm.Tracker

	// repl is the active-replication state on a replicated world, nil
	// otherwise. When set, rank/size and every communicator speak
	// logical ranks; see replica.go.
	repl *replState

	// tr is the rank's trace track (nil on an untraced world); cached
	// from the endpoint so every emission site is a field load plus a
	// nil check.
	tr *trace.Track

	finalized bool
}

// NewProc attaches a runtime instance to one rank of a world — the common
// half of every implementation's MPI_Init. The predefined communicators
// use the shared context ids 1 (world) and 2 (self). On a replicated
// world rank is the PHYSICAL endpoint rank; the instance rewires itself
// to speak logical ranks everywhere above the wire (see replica.go).
func NewProc(w *fabric.World, rank int, k Consts, e Codes, pol Policy) *Proc {
	p := &Proc{
		ep:           w.Endpoint(rank),
		world:        w,
		rank:         rank,
		size:         w.Size(),
		K:            k,
		E:            e,
		pol:          pol,
		predefTypes:  make(map[types.Kind]*Type),
		predefOps:    make(map[ops.Op]*Op),
		cidIndex:     make(map[uint32]*Comm),
		pendingSend:  make(map[uint64]*Request),
		awaitingData: make(map[seqKey]*Request),
		ft:           ulfm.NewTracker(),
		tr:           w.Endpoint(rank).Trace(),
	}
	if w.Replicated() {
		p.initReplication(w)
	}
	worldRanks := make([]int, p.size)
	for i := range worldRanks {
		worldRanks[i] = i
	}
	p.CommWorld = &Comm{CID: 1, Ranks: worldRanks, MyPos: p.rank}
	p.CommSelf = &Comm{CID: 2, Ranks: []int{p.rank}, MyPos: 0}
	p.cidIndex[1] = p.CommWorld
	p.cidIndex[2] = p.CommSelf
	for _, kind := range types.Kinds() {
		p.predefTypes[kind] = &Type{T: types.Predefined(kind), Prim: kind}
	}
	for _, op := range ops.Ops() {
		p.predefOps[op] = &Op{Op: op, Commute: op.Commutative()}
	}
	return p
}

// Predef returns the predefined datatype object for a primitive kind.
func (p *Proc) Predef(k types.Kind) *Type { return p.predefTypes[k] }

// PredefOp returns the predefined operator object.
func (p *Proc) PredefOp(op ops.Op) *Op { return p.predefOps[op] }

// Rank returns this process's world rank.
func (p *Proc) Rank() int { return p.rank }

// Size returns the number of ranks in the world.
func (p *Proc) Size() int { return p.size }

// World exposes the fabric world (launchers and tests).
func (p *Proc) World() *fabric.World { return p.world }

// Finalize releases the instance. Outstanding requests are abandoned.
func (p *Proc) Finalize() int {
	p.finalized = true
	return p.E.Success
}

// Finalized reports whether Finalize has run.
func (p *Proc) Finalized() bool { return p.finalized }

// Abort mirrors MPI_Abort: it tears the whole world down.
func (p *Proc) Abort(code int) int {
	p.world.Close()
	return p.E.ErrOther
}

// Install registers a communicator in the context-id index. The
// implementation layer calls it after wrapping a runtime-built Comm in
// its own handle representation.
func (p *Proc) Install(c *Comm) { p.cidIndex[c.CID] = c }

// Uninstall removes a freed communicator from the context-id index.
func (p *Proc) Uninstall(c *Comm) { delete(p.cidIndex, c.CID) }

// getReq returns a zeroed request from the freelist.
func (p *Proc) getReq() *Request {
	if n := len(p.freeReqs); n > 0 {
		r := p.freeReqs[n-1]
		p.freeReqs[n-1] = nil
		p.freeReqs = p.freeReqs[:n-1]
		return r
	}
	return &Request{}
}

// putReq recycles a COMPLETED request whose result has been fully
// consumed. Only the runtime's internal requests are ever recycled;
// requests that escape to the implementation layer as user handles
// (Isend/Irecv results) are not. A non-done request is left alone — it
// may still sit in a match queue, and completion is the proof it has
// been dequeued everywhere (the failure sweeps remove before failing).
func (p *Proc) putReq(r *Request) {
	if r == nil || !r.done {
		return
	}
	*r = Request{}
	p.freeReqs = append(p.freeReqs, r)
}

// Depths reports the progress engine's queue depths: posted receives,
// unexpected envelopes, pending rendezvous sends, matched rendezvous
// receives awaiting data. Implementations use it for diagnostics.
func (p *Proc) Depths() (posted, unexpected, pendingSend, awaiting int) {
	return len(p.posted), len(p.unexpected), len(p.pendingSend), len(p.awaitingData)
}

// FNV1aCIDDeriver returns MPICH's flavor of deterministic child
// context-id derivation: FNV-1a over (parent, ordinal). All members of a
// communicator observe the same pair, so all compute the same cid with no
// extra communication; real implementations run a collective agreement
// protocol, and the hash keeps the simulation cheap while preserving the
// invariant that distinct communicators get distinct ids.
func FNV1aCIDDeriver() func(parent, ordinal uint32) uint32 {
	return func(parent, ordinal uint32) uint32 {
		h := fnv.New32a()
		var b [8]byte
		putCIDWords(b[:], parent, ordinal)
		h.Write(b[:])
		return clampCID(h.Sum32())
	}
}

// SaltedCIDDeriver returns an FNV-1 derivation with a leading salt byte,
// keeping each implementation's cid stream distinct from the others'.
func SaltedCIDDeriver(salt byte) func(parent, ordinal uint32) uint32 {
	return func(parent, ordinal uint32) uint32 {
		h := fnv.New32()
		b := make([]byte, 9)
		b[0] = salt
		putCIDWords(b[1:], parent, ordinal)
		h.Write(b)
		return clampCID(h.Sum32())
	}
}

func putCIDWords(b []byte, parent, ordinal uint32) {
	b[0], b[1], b[2], b[3] = byte(parent), byte(parent>>8), byte(parent>>16), byte(parent>>24)
	b[4], b[5], b[6], b[7] = byte(ordinal), byte(ordinal>>8), byte(ordinal>>16), byte(ordinal>>24)
}

// clampCID keeps derived cids off the collective bit and clear of the
// predefined ids 1 and 2.
func clampCID(cid uint32) uint32 {
	cid &^= collCIDBit
	if cid <= 2 {
		cid += 3
	}
	return cid
}

// collBegin opens a named collective-algorithm slice on the rank's trace
// track. Each algorithm method (BcastBinomial, AllreduceRabenseifner, …)
// brackets itself, so the trace records which algorithm the policy
// actually selected — the per-round spans nest inside it.
func (p *Proc) collBegin(name string) {
	if tr := p.tr; tr != nil {
		tr.Begin(trace.CatColl, name, p.ep.Clock().Now())
	}
}

// collEnd closes the slice collBegin opened; call via defer so error
// returns close it too.
func (p *Proc) collEnd(name string) {
	if tr := p.tr; tr != nil {
		tr.End(trace.CatColl, name, p.ep.Clock().Now())
	}
}
