package mpicore

import (
	"repro/internal/fabric"
	"repro/internal/trace"
	"repro/internal/ulfm"
)

// This file is the replication layer: FTHP-MPI-style active replication
// (arXiv:2504.09989) implemented once, beneath the communicator
// abstraction, so all three ABIs inherit it unchanged — the same
// placement argument that gave every implementation ULFM in ulfm.go.
//
// On a replicated world (fabric.NewReplicatedWorld) each logical rank
// is backed by two physical endpoints: primary r and shadow r+n, both
// executing the full program. The runtime instance rewires itself at
// NewProc: p.rank/p.size and every communicator speak LOGICAL ranks, so
// matching, collectives, context-id derivation and the ULFM tracker all
// run unchanged; only the wire is physical. Three interceptions do all
// the work:
//
//   - sends (replSend): every send is forced eager and duplicated to
//     both physical replicas of the logical destination, stamped with a
//     per-sender replication sequence number. Both replicas of a sender
//     execute the same deterministic program, so they stamp identical
//     sequences — the receiver cannot tell (and must not care) which
//     replica's copy arrives first.
//   - receives (replAdmit): arriving envelopes have their physical
//     source folded to its logical rank, and eager payloads are
//     deduplicated by (logical source, sequence): the first copy
//     delivers, the second is dropped and the entry forgotten.
//   - failure notices (replNoteFailure): the fabric announces PHYSICAL
//     deaths. A primary's death with a live shadow is a PROMOTION —
//     pure bookkeeping, no rollback, no shrink, no renumbering: the
//     shadow was already executing and already receiving every message.
//     Only when BOTH replicas of a logical rank are dead does the
//     logical rank enter the ULFM tracker, surfacing ErrProcFailed
//     exactly as an unreplicated death would.
//
// Costs and constraints, both deliberate: every message is paid for
// twice at the sender and twice at the receiver (the ~2x steady-state
// overhead the recoveryfrontier figure measures against checkpointing's
// lost-work window); MPI_ANY_SOURCE receives may observe different
// arrival interleavings on the two replicas of a receiver, so programs
// that branch on wildcard match order are outside the replication
// contract (FTHP-MPI shares this constraint; no program in this
// repository uses AnySource); and after a replica dies, its partner's
// messages arrive single-copy, so their dedup entries are never
// retired — bounded by the messages sent after the death.
type replState struct {
	n    int // logical world size (physical size is 2n)
	phys int // this instance's physical rank

	// sendSeq is the per-instance replication sequence stamped into
	// eager envelopes. Rendezvous never runs under replication, so the
	// Seq field is free for this (see sendInternal).
	sendSeq uint64
	// seen dedups deliveries by (logical source, sequence). An entry is
	// created by the first copy and retired by the second.
	seen map[seqKey]bool

	deadPhys []bool // physical replica deaths, from fabric notices
	promoted []bool // logical ranks running on their promoted shadow
}

// initReplication rewires a fresh Proc for a replicated world: called by
// NewProc before the predefined communicators are built, so CommWorld
// and CommSelf come out logical-shaped.
func (p *Proc) initReplication(w *fabric.World) {
	n := w.LogicalSize()
	p.repl = &replState{
		n:        n,
		phys:     p.rank,
		seen:     make(map[seqKey]bool),
		deadPhys: make([]bool, 2*n),
		promoted: make([]bool, n),
	}
	p.rank = p.repl.phys % n
	p.size = n
}

// PhysicalRank returns the instance's physical endpoint rank: equal to
// Rank() on an unreplicated world, and either Rank() (primary) or
// Rank()+Size() (shadow) on a replicated one.
func (p *Proc) PhysicalRank() int {
	if p.repl != nil {
		return p.repl.phys
	}
	return p.rank
}

// Shadow reports whether this instance is the shadow replica of its
// logical rank.
func (p *Proc) Shadow() bool { return p.repl != nil && p.repl.phys >= p.repl.n }

// Promoted reports whether logical rank lr is running on its promoted
// shadow (its primary died; the pair is still alive).
func (p *Proc) Promoted(lr int) bool {
	return p.repl != nil && lr >= 0 && lr < p.repl.n && p.repl.promoted[lr]
}

// replSend is sendInternal's replicated data path: one logical send
// becomes two eager envelopes, one per physical replica of the logical
// destination. Rendezvous is never attempted — duplicating a three-leg
// handshake would mean deduplicating each leg, for no modeling gain —
// so EagerMax is ignored and the Seq field carries the replication
// sequence instead. A send to a half-dead pair still ships both copies;
// the fabric drops the dead replica's on the wire, exactly like any
// send to a powered-off node.
func (p *Proc) replSend(packed []byte, destLogical int, tag int32, cid uint32, owned bool) {
	p.repl.sendSeq++
	seq := p.repl.sendSeq
	if tr := p.tr; tr != nil {
		tr.Instant(trace.CatRepl, "repl-dup", p.ep.Clock().Now(),
			trace.Arg{Key: "dst", Val: trace.Itoa(destLogical)},
			trace.Arg{Key: "seq", Val: trace.Itoa(int(seq))})
	}
	// Ownership transfers per receiver: when the caller hands the
	// payload over, only one replica may take it, and the other gets its
	// own copy here (an unowned payload is defensively copied by the
	// fabric on both sends anyway).
	dup := packed
	if owned && packed != nil {
		dup = make([]byte, len(packed))
		copy(dup, packed)
	}
	for i, dst := range [2]int{destLogical, destLogical + p.repl.n} {
		e := fabric.GetEnvelope()
		e.Dst = dst
		e.CID = cid
		e.Tag = tag
		e.Proto = fabric.ProtoEager
		e.Seq = seq
		if i == 0 {
			e.Payload = packed
		} else {
			e.Payload = dup
		}
		if owned {
			p.ep.SendOwned(e)
		} else {
			p.ep.Send(e)
		}
	}
}

// replAdmit runs before dispatch's protocol switch on a replicated
// world: it folds the physical source to its logical rank (so matching,
// status sources and the ULFM sweeps all see logical ranks) and drops
// the second copy of an already-delivered eager message. It reports
// whether dispatch should proceed; a dropped duplicate has already been
// clock-accounted by Progress — the duplicate traffic costs real
// (virtual) time, which is the point of measuring replication.
func (p *Proc) replAdmit(e *fabric.Envelope) bool {
	if e.Src >= 0 {
		e.Src %= p.repl.n
	}
	if e.Proto != fabric.ProtoEager {
		return true // ctrl traffic: failure notices carry physical ranks
		// in their payload (handled by replNoteFailure) and revocation
		// is idempotent, so neither needs dedup.
	}
	key := seqKey{peer: e.Src, seq: e.Seq}
	if p.repl.seen[key] {
		delete(p.repl.seen, key) // both copies consumed; retire the entry
		if tr := p.tr; tr != nil {
			tr.Instant(trace.CatRepl, "repl-dedup", p.ep.Clock().Now(),
				trace.Arg{Key: "src", Val: trace.Itoa(e.Src)},
				trace.Arg{Key: "seq", Val: trace.Itoa(int(e.Seq))})
		}
		fabric.PutEnvelope(e)
		return false
	}
	p.repl.seen[key] = true
	return true
}

// replNoteFailure translates the fabric's physical death notice into
// replica bookkeeping. A primary dying with its shadow alive records a
// promotion and nothing else — no sweep, no error, no recovery
// collective: every peer keeps sending to both replicas and the
// promoted shadow keeps executing. Only a pair's second death makes the
// logical rank failed, feeding the ULFM tracker so pending operations
// complete with ErrProcFailed instead of hanging.
func (p *Proc) replNoteFailure(phys []int) {
	var logicalDead []int
	for _, r := range phys {
		if r < 0 || r >= 2*p.repl.n || p.repl.deadPhys[r] {
			continue
		}
		p.repl.deadPhys[r] = true
		lr := r % p.repl.n
		if p.repl.deadPhys[lr] && p.repl.deadPhys[lr+p.repl.n] {
			logicalDead = append(logicalDead, lr)
		} else if r == lr {
			p.repl.promoted[lr] = true
			if tr := p.tr; tr != nil {
				tr.Instant(trace.CatRepl, "promote", p.ep.Clock().Now(),
					trace.Arg{Key: "rank", Val: trace.Itoa(lr)})
			}
		}
	}
	if len(logicalDead) > 0 && p.ft.NoteFailed(logicalDead...) {
		p.sweepFailed()
	}
}

// replRevokeSend fans a revocation notice out to both physical replicas
// of logical member lr (CommRevoke's replicated wire path). The
// sender's own partner is included: revokeLocal is idempotent, and the
// notice covers the window before the partner's own CommRevoke call.
func (p *Proc) replRevokeSend(cid uint32, lr int) {
	for _, d := range [2]int{lr, lr + p.repl.n} {
		if d == p.repl.phys {
			continue
		}
		p.ep.Send(&fabric.Envelope{
			Dst: d, CID: cid, Proto: fabric.ProtoCtrl, Tag: ulfm.CtrlRevoke,
		})
	}
}
