package mpicore

import (
	"testing"

	"repro/internal/fabric"
)

// FuzzMatchQueue drives the progress engine's matching queues — the
// posted-receive list and the unexpected-envelope list — with arbitrary
// interleavings of posts and arrivals, wildcards included, and checks
// every decision against a reference matcher that restates the MPI
// matching rule directly: an envelope pairs with the OLDEST posted
// receive whose (cid, source, tag) accept it, a fresh receive pairs with
// the OLDEST unexpected envelope it accepts, and nothing else moves.
// The production and reference matchers must agree on every pairing and
// on both queues' exact contents at every step.
//
// This is the correctness core the differential suite leans on: event
// mode batches arrivals, so any order-sensitivity bug in the match
// queues shows up as cross-mode divergence — this target hunts the same
// bug class at a million interleavings per minute instead.
func FuzzMatchQueue(f *testing.F) {
	// Seeds: FIFO drains, wildcard-vs-directed races, cid isolation,
	// tag mismatch pile-ups.
	f.Add([]byte{0x00, 0, 0, 0x01, 0, 0})             // arrive then matching post
	f.Add([]byte{0x01, 4, 4, 0x00, 1, 2})             // wildcard post then arrival
	f.Add([]byte{0x00, 1, 1, 0x00, 1, 1, 0x01, 4, 1}) // two identical arrivals, AnySource post takes the oldest
	f.Add([]byte{0x03, 0, 0, 0x01, 0, 0, 0x02, 0, 0}) // cid B post does not take cid A's envelope
	f.Add([]byte{0x01, 0, 0, 0x01, 0, 4, 0x00, 0, 3}) // AnyTag post behind a directed mismatch
	f.Fuzz(func(t *testing.T, data []byte) {
		type refRecv struct {
			id       int
			src, tag int
			cid      uint32
		}
		type refEnv struct {
			id  int
			src int
			tag int32
			cid uint32
		}
		refAccepts := func(r refRecv, e refEnv) bool {
			return r.cid == e.cid &&
				(r.src == testConsts.AnySource || r.src == e.src) &&
				(r.tag == testConsts.AnyTag || int32(r.tag) == e.tag)
		}

		p := &Proc{K: testConsts, E: testCodes}
		reqID := map[*Request]int{}
		envID := map[*fabric.Envelope]int{}
		var refPosted []refRecv
		var refUnexpected []refEnv
		nextID := 0

		checkQueues := func(step int) {
			t.Helper()
			if len(p.posted) != len(refPosted) || len(p.unexpected) != len(refUnexpected) {
				t.Fatalf("step %d: queue depths (%d,%d), reference (%d,%d)",
					step, len(p.posted), len(p.unexpected), len(refPosted), len(refUnexpected))
			}
			for i, r := range p.posted {
				if reqID[r] != refPosted[i].id {
					t.Fatalf("step %d: posted[%d] is request %d, reference %d", step, i, reqID[r], refPosted[i].id)
				}
			}
			for i, e := range p.unexpected {
				if envID[e] != refUnexpected[i].id {
					t.Fatalf("step %d: unexpected[%d] is envelope %d, reference %d", step, i, envID[e], refUnexpected[i].id)
				}
			}
		}

		for step := 0; step+2 < len(data) && step < 3*200; step += 3 {
			op, sb, tb := data[step], data[step+1], data[step+2]
			cid := uint32(op>>1) & 1
			id := nextID
			nextID++
			if op&1 == 0 {
				// Arrival. Envelopes never carry wildcards.
				e := &fabric.Envelope{Src: int(sb % 4), Tag: int32(tb % 4), CID: cid, Proto: fabric.ProtoEager}
				envID[e] = id
				re := refEnv{id: id, src: e.Src, tag: e.Tag, cid: cid}
				gotMatch := p.matchPosted(e)
				wantMatch := -1
				for i, r := range refPosted {
					if refAccepts(r, re) {
						wantMatch = r.id
						refPosted = append(refPosted[:i], refPosted[i+1:]...)
						break
					}
				}
				switch {
				case gotMatch == nil && wantMatch != -1:
					t.Fatalf("step %d: arrival %d unmatched, reference matched receive %d", step, id, wantMatch)
				case gotMatch != nil && wantMatch == -1:
					t.Fatalf("step %d: arrival %d matched receive %d, reference unmatched", step, id, reqID[gotMatch])
				case gotMatch != nil && reqID[gotMatch] != wantMatch:
					t.Fatalf("step %d: arrival %d matched receive %d, reference %d", step, id, reqID[gotMatch], wantMatch)
				}
				if gotMatch == nil {
					p.unexpected = append(p.unexpected, e)
					refUnexpected = append(refUnexpected, re)
				}
			} else {
				// Post. Source/tag value 4 selects the wildcard.
				src, tag := int(sb%5), int(tb%5)
				if src == 4 {
					src = testConsts.AnySource
				}
				if tag == 4 {
					tag = testConsts.AnyTag
				}
				r := &Request{kind: reqRecv, srcWorld: src, tag: tag, cid: cid}
				reqID[r] = id
				rr := refRecv{id: id, src: src, tag: tag, cid: cid}
				gotMatch := p.matchUnexpected(r)
				wantMatch := -1
				for i, e := range refUnexpected {
					if refAccepts(rr, e) {
						wantMatch = e.id
						refUnexpected = append(refUnexpected[:i], refUnexpected[i+1:]...)
						break
					}
				}
				switch {
				case gotMatch == nil && wantMatch != -1:
					t.Fatalf("step %d: post %d unmatched, reference matched envelope %d", step, id, wantMatch)
				case gotMatch != nil && wantMatch == -1:
					t.Fatalf("step %d: post %d matched envelope %d, reference unmatched", step, id, envID[gotMatch])
				case gotMatch != nil && envID[gotMatch] != wantMatch:
					t.Fatalf("step %d: post %d matched envelope %d, reference %d", step, id, envID[gotMatch], wantMatch)
				}
				if gotMatch == nil {
					p.posted = append(p.posted, r)
					refPosted = append(refPosted, rr)
				}
			}
			checkQueues(step)
		}
	})
}
