package mpicore

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/abi"
	"repro/internal/fabric"
	"repro/internal/ops"
	"repro/internal/simnet"
	"repro/internal/types"
)

// Replica-layer differential suite: the dedup and promotion machinery
// must behave identically under both progress engines, and a replicated
// run's surviving replicas must reproduce the UNREPLICATED fault-free
// digests bit for bit — replication's whole contract is that nothing
// above the replica layer can tell it is there. The edge cases here are
// the ones the happy path never visits: duplicate copies still arriving
// after a promotion, a shadow dying before its primary, and both
// replicas of one logical rank dying (which must surface the
// proc-failed class on the survivors, not hang them).

// runModalReplicated executes fn on every PHYSICAL rank (2n of them) of
// an n-logical-rank replicated world in the given progress mode and
// returns the per-physical-rank results: primaries at [0,n), shadows at
// [n,2n).
func runModalReplicated(t *testing.T, n int, pol Policy, mode fabric.ProgressMode, fn func(p *Proc) modalResult) []modalResult {
	t.Helper()
	w, err := fabric.NewReplicatedWorld(simnet.SingleNode(n), mode)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	results := make([]modalResult, 2*n)
	var wg sync.WaitGroup
	for r := 0; r < 2*n; r++ {
		r := r
		wg.Add(1)
		w.Spawn(r, func() {
			defer wg.Done()
			results[r] = fn(NewProc(w, r, testConsts, testCodes, pol))
		})
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("replicated workload timed out in %q mode", mode)
	}
	return results
}

// replKill schedules one fail-stop event inside replCycle: after step's
// allreduce, trigger kills the listed physical ranks (itself included)
// and every listed rank returns.
type replKill struct {
	step    int
	ranks   []int
	trigger int
}

// replCycle is the replica suite's workload: `steps` lockstep allreduce
// rounds over the (logical) world communicator, each folded into the
// digest — the same byte stream whether the world is replicated or not,
// which is what lets a replicated run's results be compared against an
// unreplicated reference rank for rank. With kills scheduled, the dying
// physical ranks drop out after their step while everyone else keeps
// going; whether the survivors complete or observe the proc-failed
// class is decided entirely by the replica layer (a covered logical
// rank stays invisible; an uncovered one dooms the collective).
func replCycle(seed uint64, steps int, kills []replKill) func(p *Proc) modalResult {
	return func(p *Proc) modalResult {
		me := p.Rank()
		c := p.CommWorld
		it := p.Predef(types.KindInt64)
		sum := p.PredefOp(ops.OpSum)
		h := uint64(fnvOffset)
		for s := 0; s < steps; s++ {
			vals := []int64{int64(seed)*int64(me+1) + int64(s)}
			rb := make([]byte, 8)
			if code := p.Allreduce(abi.Int64Bytes(vals), rb, 1, it, sum, c); code != testCodes.Success {
				return modalResult{h, code}
			}
			h = foldBytes(h, rb)
			for _, k := range kills {
				if k.step != s {
					continue
				}
				dying := false
				for _, pr := range k.ranks {
					if p.PhysicalRank() == pr {
						dying = true
					}
				}
				if !dying {
					continue
				}
				if p.PhysicalRank() == k.trigger {
					p.World().Kill(k.ranks...)
					p.World().NotifyFailure(k.ranks...)
				}
				return modalResult{h, testCodes.Success}
			}
		}
		return modalResult{h, testCodes.Success}
	}
}

// assertReplicatedModesAgree runs the replicated workload under
// goroutine mode once and event mode twice and demands bit-identical
// per-physical-rank outcomes, the same bar as assertModesAgree.
func assertReplicatedModesAgree(t *testing.T, n int, pol Policy, fn func(p *Proc) modalResult) []modalResult {
	t.Helper()
	gor := runModalReplicated(t, n, pol, fabric.ProgressGoroutine, fn)
	ev1 := runModalReplicated(t, n, pol, fabric.ProgressEvent, fn)
	ev2 := runModalReplicated(t, n, pol, fabric.ProgressEvent, fn)
	for r := 0; r < 2*n; r++ {
		if gor[r] != ev1[r] {
			t.Errorf("physical rank %d diverged across modes: goroutine %+v vs event %+v", r, gor[r], ev1[r])
		}
		if ev1[r] != ev2[r] {
			t.Errorf("physical rank %d nondeterministic in event mode: %+v vs %+v", r, ev1[r], ev2[r])
		}
	}
	return gor
}

// TestReplicaPromotionDedup kills a primary mid-run and keeps computing
// for several more rounds: every post-promotion round still delivers
// two copies per send (one per surviving sender replica) to the
// promoted shadow, so the dedup table is exercised exactly where it is
// hardest — on a receiver that just changed roles. Every surviving
// replica must finish with the unreplicated fault-free digest, under
// both engines.
func TestReplicaPromotionDedup(t *testing.T) {
	const n, victim, steps = 4, 2, 6
	for polName, pol := range testPolicies() {
		t.Run(polName, func(t *testing.T) {
			ref := runModal(t, n, pol, fabric.ProgressGoroutine, replCycle(7, steps, nil))
			res := assertReplicatedModesAgree(t, n, pol, replCycle(7, steps, []replKill{
				{step: 1, ranks: []int{victim}, trigger: victim},
			}))
			for lr := 0; lr < n; lr++ {
				if ref[lr].code != testCodes.Success {
					t.Fatalf("reference rank %d failed: %+v", lr, ref[lr])
				}
				// The victim's primary died after step 1; its shadow (and
				// both replicas of everyone else) ran to completion.
				if lr != victim && res[lr] != ref[lr] {
					t.Errorf("primary %d: %+v != reference %+v", lr, res[lr], ref[lr])
				}
				if res[lr+n] != ref[lr] {
					t.Errorf("shadow of %d: %+v != reference %+v", lr, res[lr+n], ref[lr])
				}
			}
			if res[victim].code != testCodes.Success {
				t.Errorf("dead primary recorded error %d before its death", res[victim].code)
			}
		})
	}
}

// TestReplicaShadowDiesFirst kills a SHADOW mid-run: the primary covers
// its logical rank, no promotion happens, and the run must complete
// with every logical result untouched — including on the receivers,
// whose dedup entries for the dead shadow's partner now arrive
// single-copy and never retire (the documented bounded leak).
func TestReplicaShadowDiesFirst(t *testing.T) {
	const n, victim, steps = 4, 1, 6
	pol := testPolicies()["treeish"]
	ref := runModal(t, n, pol, fabric.ProgressGoroutine, replCycle(11, steps, nil))
	res := assertReplicatedModesAgree(t, n, pol, replCycle(11, steps, []replKill{
		{step: 1, ranks: []int{victim + n}, trigger: victim + n},
	}))
	for lr := 0; lr < n; lr++ {
		if res[lr] != ref[lr] {
			t.Errorf("primary %d: %+v != reference %+v", lr, res[lr], ref[lr])
		}
		if lr != victim && res[lr+n] != ref[lr] {
			t.Errorf("shadow of %d: %+v != reference %+v", lr, res[lr+n], ref[lr])
		}
	}
}

// replDoubleDeath stages the ordering the satellite list calls out: the
// victim's shadow dies after round 1 (the primary covers, rounds 2-3
// still complete), then the primary dies too. With both replicas gone
// the logical rank is genuinely failed, and the survivors run the same
// detect/revoke protocol as ulfmRecoveryCycle: the detector's directed
// receive from the victim is completed by the failure sweep with the
// proc-failed class (not a hang), the detector revokes the world —
// through the replicated revoke path, which fans the control message to
// both replicas of every rank — and everyone else observes ErrRevoked.
// Every error class is forced by construction, so it must be identical
// across engines and across both replicas of each survivor.
func replDoubleDeath(seed uint64, victim int) func(p *Proc) modalResult {
	return func(p *Proc) modalResult {
		me, n := p.Rank(), p.Size()
		c := p.CommWorld
		it := p.Predef(types.KindInt64)
		bt := p.Predef(types.KindByte)
		sum := p.PredefOp(ops.OpSum)
		h := uint64(fnvOffset)
		for s := 0; s < 4; s++ {
			vals := []int64{int64(seed)*int64(me+1) + int64(s)}
			rb := make([]byte, 8)
			if code := p.Allreduce(abi.Int64Bytes(vals), rb, 1, it, sum, c); code != testCodes.Success {
				return modalResult{h, code}
			}
			h = foldBytes(h, rb)
			if s == 1 && p.PhysicalRank() == victim+n {
				p.World().Kill(victim + n)
				p.World().NotifyFailure(victim + n)
				return modalResult{h, testCodes.Success}
			}
			if s == 3 && p.PhysicalRank() == victim {
				p.World().Kill(victim, victim+n)
				p.World().NotifyFailure(victim, victim+n)
				return modalResult{h, testCodes.Success}
			}
		}
		// Tag 99 is never sent: only the failure sweep can complete this
		// receive, and only because the replica layer told the tracker the
		// logical rank is dead once BOTH its replicas were. Every survivor
		// checks it — proc-failed, not a hang, is the whole point.
		buf := make([]byte, 8)
		observed := p.Recv(buf, 8, bt, victim, 99, c, nil)
		h = foldU64(h, uint64(observed))
		if me == 0 {
			// Collect a ready byte from every other survivor before
			// revoking: a revocation racing a survivor's in-flight
			// collective resolves schedule-dependently, and this suite
			// demands bit-identical outcomes across engines.
			for src := 1; src < n; src++ {
				if src == victim {
					continue
				}
				if code := p.Recv(buf, 1, bt, src, 97, c, nil); code != testCodes.Success {
					return modalResult{h, code}
				}
			}
			p.CommRevoke(c)
			return modalResult{h, observed}
		}
		if code := p.Send([]byte{1}, 1, bt, 0, 97, c); code != testCodes.Success {
			return modalResult{h, code}
		}
		// Tag 98 is never sent: only the revocation — fanned out to both
		// replicas of every rank by the replicated revoke path — can
		// complete this, so ErrRevoked by construction.
		revoked := p.Recv(buf, 8, bt, 0, 98, c, nil)
		h = foldU64(h, uint64(revoked))
		return modalResult{h, revoked}
	}
}

func TestReplicaDoubleDeath(t *testing.T) {
	const n, victim = 4, 2
	pol := testPolicies()["treeish"]
	res := assertReplicatedModesAgree(t, n, pol, replDoubleDeath(13, victim))
	for lr := 0; lr < n; lr++ {
		want := testCodes.ErrRevoked
		switch lr {
		case victim:
			// Both replicas died cleanly before observing any error.
			want = testCodes.Success
		case 0:
			want = testCodes.ErrProcFailed
		}
		for _, phys := range []int{lr, lr + n} {
			if res[phys].code != want {
				t.Errorf("physical rank %d: code %d, want %d (%+v)",
					phys, res[phys].code, want, res[phys])
			}
		}
	}
}

// TestReplicaDigestsMatchAcrossPolicies pins the fault-free replicated
// world against the unreplicated reference for every eager/rendezvous
// policy: replication forces every send eager (the replication sequence
// lives in the envelope's Seq field), and that forcing must not be
// observable in any result.
func TestReplicaDigestsMatchAcrossPolicies(t *testing.T) {
	const n, steps = 4, 4
	for polName, pol := range testPolicies() {
		t.Run(fmt.Sprintf("%s", polName), func(t *testing.T) {
			ref := runModal(t, n, pol, fabric.ProgressGoroutine, replCycle(3, steps, nil))
			res := assertReplicatedModesAgree(t, n, pol, replCycle(3, steps, nil))
			for lr := 0; lr < n; lr++ {
				if res[lr] != ref[lr] || res[lr+n] != ref[lr] {
					t.Errorf("logical %d: primary %+v shadow %+v != reference %+v",
						lr, res[lr], res[lr+n], ref[lr])
				}
			}
		})
	}
}
