package mpicore

import (
	"repro/internal/fabric"
	"repro/internal/trace"
	"repro/internal/ulfm"
)

// ulfmBegin/ulfmEnd bracket a recovery collective on the rank's trace
// track, like collBegin/collEnd for regular collectives.
func (p *Proc) ulfmBegin(name string) {
	if tr := p.tr; tr != nil {
		tr.Begin(trace.CatUlfm, name, p.ep.Clock().Now())
	}
}

func (p *Proc) ulfmEnd(name string) {
	if tr := p.tr; tr != nil {
		tr.End(trace.CatUlfm, name, p.ep.Clock().Now())
	}
}

// fmtRanks renders a rank list as a compact trace arg value.
func fmtRanks(ranks []int) string {
	s := ""
	for i, r := range ranks {
		if i > 0 {
			s += ","
		}
		s += trace.Itoa(r)
	}
	return s
}

// This file is the communicating half of the ULFM subsystem (see
// internal/ulfm for the state half): failure propagation through the
// progress engine, communicator revocation, and the recovery collectives
// MPIX_Comm_shrink and MPIX_Comm_agree — implemented once, below every
// ABI, like the rest of the runtime. The implementation packages expose
// these through their own constant vocabularies (their own MPIX error
// code numbering in particular), which is the cross-ABI divergence the
// paper's fault-tolerance argument turns on.

// ftTagBit marks fault-tolerant (shrink/agree) traffic. Regular
// collective tag blocks are NextCollTag's (CollSeq & 0xffffff) << 6 —
// bits 6..29 — so bit 30 keeps the two spaces disjoint on the wire:
// after a failure, one survivor's straggling collective rounds can never
// match another survivor's recovery exchange.
const ftTagBit int32 = 1 << 30

// nextFtTag reserves a fault-tolerant tag block on c. It advances
// UlfmSeq, not CollSeq: survivors of a failure may have attempted
// different numbers of regular collectives (CollSeq diverges exactly
// when ULFM is needed), but they call the recovery collectives in the
// same order, so UlfmSeq is the counter they still share.
func (p *Proc) nextFtTag(c *Comm) int32 {
	c.UlfmSeq++
	return ftTagBit | int32((c.UlfmSeq&0x00ffffff)<<6)
}

// handleCtrl dispatches a control-plane envelope: the fabric's failure
// notice, or a peer's revocation notice.
func (p *Proc) handleCtrl(e *fabric.Envelope) {
	switch e.Tag {
	case ulfm.CtrlFailure:
		// The fabric names PHYSICAL dead ranks; on a replicated world the
		// replica layer decides whether a logical rank actually failed
		// (both replicas down) or merely promoted its shadow.
		dead := ulfm.DecodeRanks(e.Payload)
		if tr := p.tr; tr != nil {
			tr.Instant(trace.CatUlfm, "notice", p.ep.Clock().Now(),
				trace.Arg{Key: "ranks", Val: fmtRanks(dead)})
		}
		if p.repl != nil {
			p.replNoteFailure(dead)
			return
		}
		if p.ft.NoteFailed(dead...) {
			p.sweepFailed()
		}
	case ulfm.CtrlRevoke:
		p.revokeLocal(e.CID)
	}
}

// failRequest completes a request with a ULFM error code.
func (p *Proc) failRequest(r *Request, code int) {
	r.done = true
	r.code = code
	r.status.Error = int32(code)
}

// recvDoom decides whether a pending receive can no longer complete:
// its matched source is dead, or — for wildcard receives, per ULFM's
// MPI_ANY_SOURCE rule — some member of the communicator is dead and not
// yet acknowledged (acknowledged failures stop poisoning wildcards, so
// CommFailureAck re-arms them). Fault-tolerant (shrink/agree) receives
// only doom on their direct peer.
func (p *Proc) recvDoom(r *Request) (int, bool) {
	if r.srcWorld != p.K.AnySource {
		if p.ft.Failed(r.srcWorld) {
			return p.E.ErrProcFailed, true
		}
	} else if !r.ft && r.comm != nil && p.ft.HasUnacked(r.comm.CID, r.comm.Ranks) {
		return p.E.ErrProcFailed, true
	}
	if !r.ft && p.ft.Revoked(r.cid&^collCIDBit) {
		return p.E.ErrRevoked, true
	}
	return p.E.Success, false
}

// sweepFailed completes every pending operation stranded by newly-known
// deaths: posted receives whose source (or, unacknowledged, whose
// wildcard communicator) is dead, rendezvous sends waiting on a dead
// receiver's clear-to-send, and matched receives waiting on a dead
// sender's data. This is what turns "peer is gone" from a hang into
// ErrProcFailed — the failure-detection guarantee ULFM specifies.
func (p *Proc) sweepFailed() {
	keep := p.posted[:0]
	for _, r := range p.posted {
		if r.srcWorld != p.K.AnySource && p.ft.Failed(r.srcWorld) {
			p.failRequest(r, p.E.ErrProcFailed)
			continue
		}
		if !r.ft && r.srcWorld == p.K.AnySource && r.comm != nil &&
			p.ft.HasUnacked(r.comm.CID, r.comm.Ranks) {
			p.failRequest(r, p.E.ErrProcFailed)
			continue
		}
		keep = append(keep, r)
	}
	p.posted = keep
	for seq, s := range p.pendingSend {
		if p.ft.Failed(s.dest) {
			delete(p.pendingSend, seq)
			s.payload = nil
			p.failRequest(s, p.E.ErrProcFailed)
		}
	}
	for key, r := range p.awaitingData {
		if p.ft.Failed(key.peer) {
			delete(p.awaitingData, key)
			p.failRequest(r, p.E.ErrProcFailed)
		}
	}
}

// revokeLocal marks a context id revoked and poisons its pending
// traffic. Idempotent; fault-tolerant requests are exempt (ULFM's
// recovery collectives must keep working on a revoked communicator).
func (p *Proc) revokeLocal(cid uint32) {
	if !p.ft.Revoke(cid) {
		return
	}
	if tr := p.tr; tr != nil {
		tr.Instant(trace.CatUlfm, "revoke", p.ep.Clock().Now(),
			trace.Arg{Key: "cid", Val: trace.Itoa(int(cid))})
	}
	keep := p.posted[:0]
	for _, r := range p.posted {
		if !r.ft && r.cid&^collCIDBit == cid {
			p.failRequest(r, p.E.ErrRevoked)
			continue
		}
		keep = append(keep, r)
	}
	p.posted = keep
	for seq, s := range p.pendingSend {
		if !s.ft && s.cid&^collCIDBit == cid {
			delete(p.pendingSend, seq)
			s.payload = nil
			p.failRequest(s, p.E.ErrRevoked)
		}
	}
	for key, r := range p.awaitingData {
		if !r.ft && r.cid&^collCIDBit == cid {
			delete(p.awaitingData, key)
			p.failRequest(r, p.E.ErrRevoked)
		}
	}
}

// NoteFailed feeds deaths observed out of band (launcher-level failure
// detection) into the tracker, sweeping stranded operations. The fabric
// notice normally does this through dispatch; the entry point exists for
// implementation layers and tests.
func (p *Proc) NoteFailed(ranks ...int) {
	if p.repl != nil {
		p.replNoteFailure(ranks)
		return
	}
	if p.ft.NoteFailed(ranks...) {
		p.sweepFailed()
	}
}

// FailedRank reports whether world rank w is known dead.
func (p *Proc) FailedRank(w int) bool { return p.ft.Failed(w) }

// CommRevoked reports whether c has been revoked.
func (p *Proc) CommRevoked(c *Comm) bool { return c != nil && p.ft.Revoked(c.CID) }

// CommRevoke mirrors MPIX_Comm_revoke: it marks the communicator
// revoked locally and broadcasts the revocation to every other member.
// Revocation is not collective — any member may revoke unilaterally —
// and not an error: the call succeeds, and every *subsequent* regular
// operation on the communicator (here and, once the notice lands, on
// every other member) answers ErrRevoked. Idempotent.
func (p *Proc) CommRevoke(c *Comm) int {
	if c == nil {
		return p.E.ErrComm
	}
	if p.ft.Revoked(c.CID) {
		return p.E.Success
	}
	if tr := p.tr; tr != nil {
		tr.Instant(trace.CatUlfm, "CommRevoke", p.ep.Clock().Now(),
			trace.Arg{Key: "cid", Val: trace.Itoa(int(c.CID))})
	}
	p.revokeLocal(c.CID)
	for _, w := range c.Ranks {
		if p.ft.Failed(w) {
			continue
		}
		if p.repl != nil {
			p.replRevokeSend(c.CID, w)
			continue
		}
		if w == p.rank {
			continue
		}
		p.ep.Send(&fabric.Envelope{
			Dst: w, CID: c.CID, Proto: fabric.ProtoCtrl, Tag: ulfm.CtrlRevoke,
		})
	}
	return p.E.Success
}

// CommFailureAck mirrors MPIX_Comm_failure_ack: acknowledge every
// currently-known failure among c's members, re-arming wildcard-source
// receives on c (they stop raising ErrProcFailed for acknowledged
// deaths; a later death starts a new cycle).
func (p *Proc) CommFailureAck(c *Comm) int {
	if c == nil {
		return p.E.ErrComm
	}
	p.ft.Ack(c.CID, c.Ranks)
	return p.E.Success
}

// CommFailureGetAcked mirrors MPIX_Comm_failure_get_acked: the group of
// members whose failure has been acknowledged on c.
func (p *Proc) CommFailureGetAcked(c *Comm) (*Group, int) {
	if c == nil {
		return nil, p.E.ErrComm
	}
	return &Group{Ranks: p.ft.AckedRanks(c.CID, c.Ranks), MyPos: -1}, p.E.Success
}

// ftSend ships a fault-tolerant payload to a communicator rank, skipping
// known-dead peers (their mailboxes are gone; the fabric would drop the
// envelope anyway).
func (p *Proc) ftSend(c *Comm, pos int, tag int32, data []byte) int {
	w := c.Ranks[pos]
	if p.ft.Failed(w) {
		return p.E.Success
	}
	// ftExchange fans the same payload slice out to every believed-alive
	// peer, so the fabric must keep copying it (owned=false).
	r := p.sendInternal(data, w, tag, c.CID|collCIDBit, false)
	if r != nil {
		r.ft = true
	}
	for r != nil && !r.done {
		if code := p.Progress(true); code != p.E.Success {
			return code
		}
	}
	return p.E.Success
}

// ftRecvPost posts a fault-tolerant receive from a communicator rank.
func (p *Proc) ftRecvPost(c *Comm, pos int, tag int32) *Request {
	r := &Request{
		kind: reqRecv, comm: c, raw: true, ft: true,
		srcWorld: c.Ranks[pos], tag: int(tag), cid: c.CID | collCIDBit,
	}
	p.postRecv(r)
	return r
}

// ftExchange is the fault-tolerant all-to-all the recovery collectives
// are built on: every participant sends its payload to every member it
// believes alive and collects whatever arrives, treating a peer's death
// (detected at post time or by the failure sweep mid-wait) as a missing
// contribution rather than an error. views[pos] is nil for self, the
// dead, and the newly-dead. Liveness: believed-alive sets only shrink
// toward the truth, every actually-alive member sends to every member
// of its (superset) view, and receives from actually-dead members are
// completed by the failure notice's sweep — so no participant waits on
// a message that can never come.
func (p *Proc) ftExchange(c *Comm, tag int32, payload []byte) ([][]byte, int) {
	n := c.Size()
	views := make([][]byte, n)
	reqs := make([]*Request, n)
	for pos, w := range c.Ranks {
		if pos == c.MyPos || p.ft.Failed(w) {
			continue
		}
		reqs[pos] = p.ftRecvPost(c, pos, tag)
	}
	for pos, w := range c.Ranks {
		if pos == c.MyPos || p.ft.Failed(w) {
			continue
		}
		if code := p.ftSend(c, pos, tag, payload); code != p.E.Success {
			return views, code
		}
	}
	for pos, r := range reqs {
		if r == nil {
			continue
		}
		for !r.done {
			if code := p.Progress(true); code != p.E.Success {
				return views, code
			}
		}
		if r.code == p.E.Success {
			views[pos] = r.rawOut
		}
	}
	return views, p.E.Success
}

// encodeAgree packs one agreement contribution: the 64-bit flag plus the
// contributor's failed-set bitmap.
func encodeAgree(flag uint64, bm ulfm.Bitmap) []byte {
	out := make([]byte, 8+len(bm))
	for i := 0; i < 8; i++ {
		out[i] = byte(flag >> (8 * i))
	}
	copy(out[8:], bm)
	return out
}

// decodeAgree unpacks a contribution; ok=false rejects malformed ones.
func decodeAgree(b []byte, n int) (uint64, ulfm.Bitmap, bool) {
	if len(b) != 8+len(ulfm.NewBitmap(n)) {
		return 0, nil, false
	}
	var flag uint64
	for i := 0; i < 8; i++ {
		flag |= uint64(b[i]) << (8 * i)
	}
	return flag, ulfm.Bitmap(b[8:]), true
}

// agreeRounds runs the two-round fault-tolerant agreement over c: AND
// the flags, union the failed-set views. One round converges when every
// survivor already shares the failed set (the fabric announces each
// death to all survivors atomically at kill time); the second round
// re-propagates anything a participant learned mid-round, so staggered
// discovery of multiple failures still converges. Both rounds run
// unconditionally — the round count is part of the tag protocol and
// must be identical on every participant.
func (p *Proc) agreeRounds(c *Comm, flag uint64) (uint64, ulfm.Bitmap, int) {
	base := p.nextFtTag(c)
	bm := p.ft.FailedBitmap(p.size)
	agreed := flag
	for round := int32(0); round < 2; round++ {
		t0 := p.collNow()
		views, code := p.ftExchange(c, base|round, encodeAgree(agreed, bm))
		if code != p.E.Success {
			return 0, nil, code
		}
		for _, v := range views {
			if v == nil {
				continue
			}
			f, vb, ok := decodeAgree(v, p.size)
			if !ok {
				continue
			}
			agreed &= f
			bm.Or(vb)
		}
		if tr := p.tr; tr != nil {
			tr.Span(trace.CatUlfm, "agree-round", t0, p.ep.Clock().Now(),
				trace.Arg{Key: "round", Val: trace.Itoa(int(round))})
		}
	}
	// Deaths learned after the last fold (a sweep completing one of this
	// round's receives) still belong in the final view.
	bm.Or(p.ft.FailedBitmap(p.size))
	return agreed, bm, p.E.Success
}

// CommAgree mirrors MPIX_Comm_agree: a fault-tolerant agreement that
// returns the bitwise AND of every living participant's flag and — like
// the real call — acknowledges the failures it absorbed (it subsumes
// CommFailureAck), which is what makes it "an allreduce over acked
// failures": after Agree returns, every survivor shares both the value
// and the failure knowledge. It works on revoked communicators.
func (p *Proc) CommAgree(c *Comm, flag uint64) (uint64, int) {
	if c == nil {
		return 0, p.E.ErrComm
	}
	p.ulfmBegin("CommAgree")
	defer p.ulfmEnd("CommAgree")
	agreed, _, code := p.agreeRounds(c, flag)
	if code != p.E.Success {
		return 0, code
	}
	p.ft.Ack(c.CID, c.Ranks)
	return agreed, p.E.Success
}

// CommShrink mirrors MPIX_Comm_shrink: derive a survivors-only
// communicator from c — revoked or not. The members agree on the failed
// set first (the same two-round exchange as CommAgree), then every
// survivor deterministically builds the same child: the parent's rank
// list minus the agreed dead, and a context id derived through the
// policy's salted stream from the parent's id, the ULFM collective
// ordinal, and a digest of the agreed failed set — so distinct shrinks
// (or shrinks after different failures) can never alias, and all
// survivors compute the same cid with no extra round, exactly like the
// existing CommDup/CommSplit derivation.
func (p *Proc) CommShrink(c *Comm) (*Comm, int) {
	if c == nil {
		return nil, p.E.ErrComm
	}
	p.ulfmBegin("CommShrink")
	defer p.ulfmEnd("CommShrink")
	_, bm, code := p.agreeRounds(c, ^uint64(0))
	if code != p.E.Success {
		return nil, code
	}
	ranks := make([]int, 0, c.Size())
	myPos := -1
	for _, w := range c.Ranks {
		if bm.Has(w) {
			continue
		}
		if w == p.rank {
			myPos = len(ranks)
		}
		ranks = append(ranks, w)
	}
	if myPos == -1 {
		// The caller is in the agreed dead set: unreachable for a live
		// rank (the fabric never announces false deaths), kept as a
		// defensive error rather than a corrupt communicator.
		return nil, p.E.ErrIntern
	}
	ordinal := 0x80000000 | ((c.UlfmSeq<<8)^bm.Hash())&0x7fffffff
	nc := &Comm{
		CID:   p.pol.DeriveCID(c.CID, ordinal),
		Ranks: ranks,
		MyPos: myPos,
	}
	p.Install(nc)
	return nc, p.E.Success
}
