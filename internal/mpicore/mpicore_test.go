package mpicore

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/abi"
	"repro/internal/fabric"
	"repro/internal/ops"
	"repro/internal/simnet"
	"repro/internal/types"
)

// Test vocabulary: the runtime must work under ANY constant/code tables,
// so the tests use deliberately odd ones (none of the three shipping
// implementations' values) to catch hardcoded constants.
var testConsts = Consts{
	AnySource: -7,
	AnyTag:    -8,
	ProcNull:  -9,
	TagUB:     1 << 20,
	Undefined: -4242,
}

var testCodes = Codes{
	Success: 0, ErrBuffer: 101, ErrCount: 102, ErrType: 103, ErrTag: 104,
	ErrComm: 105, ErrRank: 106, ErrRoot: 107, ErrGroup: 108, ErrOp: 109,
	ErrArg: 110, ErrTruncate: 111, ErrRequest: 112, ErrIntern: 113, ErrOther: 114,
	ErrProcFailed: 171, ErrRevoked: 172,
}

// testPolicies is one policy per algorithm family, so every algorithm in
// the shared set is exercised through the same assertions.
func testPolicies() map[string]Policy {
	mpichish := Policy{
		EagerMax:  16 * 1024,
		DeriveCID: FNV1aCIDDeriver(),
		Barrier:   func(p *Proc, c *Comm, tag int32) int { return p.BarrierDissemination(c, tag) },
		Bcast: func(p *Proc, c *Comm, packed []byte, root int, tag int32) int {
			if len(packed) <= 12288 {
				return p.BcastBinomial(c, packed, root, tag)
			}
			return p.BcastScatterRing(c, packed, root, tag)
		},
		Reduce: func(p *Proc, c *Comm, acc []byte, o *Op, k types.Kind, root int, tag int32) int {
			return p.ReduceBinomial(c, acc, o, k, root, tag)
		},
		Allreduce: func(p *Proc, c *Comm, acc []byte, o *Op, k types.Kind, tag int32) int {
			n := c.Size()
			if len(acc) > 2048 && n&(n-1) == 0 && len(acc)/k.Size() >= n {
				return p.AllreduceRabenseifner(c, acc, o, k, tag)
			}
			return p.AllreduceRecDoubling(c, acc, o, k, tag, 62)
		},
		Gather: func(p *Proc, c *Comm, own, region []byte, blockSz, root int, tag int32) int {
			return p.GatherBinomial(c, own, region, blockSz, root, tag)
		},
		Scatter: func(p *Proc, c *Comm, region []byte, blockSz, root int, tag int32) ([]byte, int) {
			return p.ScatterBinomial(c, region, blockSz, root, tag)
		},
		Allgather: func(p *Proc, c *Comm, region []byte, blockSz int, tag int32) int {
			n := c.Size()
			if n&(n-1) == 0 && n*blockSz <= 32768 {
				return p.AllgatherRecDoubling(c, region, blockSz, tag)
			}
			return p.AllgatherRing(c, region, blockSz, tag)
		},
		Alltoall: func(p *Proc, c *Comm, out, in []byte, blockSz int, tag int32) int {
			switch {
			case blockSz <= 256:
				return p.AlltoallBruck(c, out, in, blockSz, tag)
			case blockSz < 32768:
				return p.AlltoallOverlap(c, out, in, blockSz, tag)
			default:
				return p.AlltoallPairwise(c, out, in, blockSz, tag)
			}
		},
	}
	ompish := Policy{
		EagerMax:  4 * 1024,
		DeriveCID: SaltedCIDDeriver('T'),
		Barrier:   func(p *Proc, c *Comm, tag int32) int { return p.BarrierRDFold(c, tag) },
		Bcast: func(p *Proc, c *Comm, packed []byte, root int, tag int32) int {
			if len(packed) <= 8192 {
				return p.BcastBinaryTree(c, packed, root, tag)
			}
			return p.BcastChain(c, packed, root, tag, 4096)
		},
		Reduce: func(p *Proc, c *Comm, acc []byte, o *Op, k types.Kind, root int, tag int32) int {
			return p.ReduceBinaryTree(c, acc, o, k, root, tag)
		},
		Allreduce: func(p *Proc, c *Comm, acc []byte, o *Op, k types.Kind, tag int32) int {
			if len(acc) > 2048 && len(acc)/k.Size() >= c.Size() {
				return p.AllreduceRing(c, acc, o, k, tag)
			}
			return p.AllreduceRecDoubling(c, acc, o, k, tag, 63)
		},
		Gather: func(p *Proc, c *Comm, own, region []byte, blockSz, root int, tag int32) int {
			return p.GatherLinear(c, own, region, blockSz, root, tag)
		},
		Scatter: func(p *Proc, c *Comm, region []byte, blockSz, root int, tag int32) ([]byte, int) {
			return p.ScatterLinear(c, region, blockSz, root, tag)
		},
		Allgather: func(p *Proc, c *Comm, region []byte, blockSz int, tag int32) int {
			if blockSz <= 1024 {
				return p.AllgatherBruck(c, region, blockSz, tag)
			}
			return p.AllgatherRing(c, region, blockSz, tag)
		},
		Alltoall: func(p *Proc, c *Comm, out, in []byte, blockSz int, tag int32) int {
			if blockSz <= 200 && c.Size() > 2 {
				return p.AlltoallBruck(c, out, in, blockSz, tag)
			}
			return p.AlltoallOverlap(c, out, in, blockSz, tag)
		},
	}
	return map[string]Policy{"treeish": mpichish, "tuned": ompish}
}

// runSPMD launches fn on n ranks under the given policy.
func runSPMD(t *testing.T, n int, pol Policy, fn func(p *Proc) error) {
	t.Helper()
	w, err := fabric.NewWorld(simnet.SingleNode(n))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if err := fn(NewProc(w, r, testConsts, testCodes, pol)); err != nil {
				errs <- fmt.Errorf("rank %d: %w", r, err)
				w.Close()
			}
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("SPMD test timed out (likely deadlock)")
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestCollectivesUnderEveryPolicy runs the same verification program
// under both algorithm personalities: same math, different wire
// schedules — the invariant the scenario matrix's cross-implementation
// claims rest on.
func TestCollectivesUnderEveryPolicy(t *testing.T) {
	for name, pol := range testPolicies() {
		for _, n := range []int{1, 2, 3, 4, 5, 8} {
			for _, count := range []int{1, 700, 3000} {
				t.Run(fmt.Sprintf("%s/n=%d/count=%d", name, n, count), func(t *testing.T) {
					pol := pol
					runSPMD(t, n, pol, func(p *Proc) error {
						c := p.CommWorld
						me := c.MyPos
						it := p.Predef(types.KindInt64)
						sum := p.PredefOp(ops.OpSum)

						vals := make([]int64, count)
						for i := range vals {
							vals[i] = int64(me+1) * int64(i%11+1)
						}
						rb := make([]byte, count*8)
						if code := p.Allreduce(abi.Int64Bytes(vals), rb, count, it, sum, c); code != 0 {
							return fmt.Errorf("allreduce code %d", code)
						}
						tri := int64(n * (n + 1) / 2)
						for i, v := range abi.Int64sOf(rb) {
							if v != tri*int64(i%11+1) {
								return fmt.Errorf("allreduce elem %d = %d", i, v)
							}
						}

						root := n - 1
						if code := p.Reduce(abi.Int64Bytes(vals), rb, count, it, sum, root, c); code != 0 {
							return fmt.Errorf("reduce code %d", code)
						}
						if me == root {
							for i, v := range abi.Int64sOf(rb) {
								if v != tri*int64(i%11+1) {
									return fmt.Errorf("reduce elem %d = %d", i, v)
								}
							}
						}

						bc := make([]byte, count*8)
						if me == root {
							copy(bc, rb)
						}
						if code := p.Bcast(bc, count, it, root, c); code != 0 {
							return fmt.Errorf("bcast code %d", code)
						}
						for i, v := range abi.Int64sOf(bc) {
							if v != tri*int64(i%11+1) {
								return fmt.Errorf("bcast elem %d = %d", i, v)
							}
						}

						// Gather + scatter round trip.
						sb := abi.Int64Bytes([]int64{int64(me), int64(me * 3)})
						var gbuf []byte
						if me == root {
							gbuf = make([]byte, n*16)
						}
						if code := p.Gather(sb, 2, it, gbuf, 2, it, root, c); code != 0 {
							return fmt.Errorf("gather code %d", code)
						}
						if me == root {
							got := abi.Int64sOf(gbuf)
							for r := 0; r < n; r++ {
								if got[2*r] != int64(r) || got[2*r+1] != int64(r*3) {
									return fmt.Errorf("gather block %d = %v", r, got[2*r:2*r+2])
								}
							}
						}
						back := make([]byte, 16)
						if code := p.Scatter(gbuf, 2, it, back, 2, it, root, c); code != 0 {
							return fmt.Errorf("scatter code %d", code)
						}
						if got := abi.Int64sOf(back); got[0] != int64(me) || got[1] != int64(me*3) {
							return fmt.Errorf("scatter = %v", got)
						}

						// Allgather.
						ab := make([]byte, n*8)
						if code := p.Allgather(abi.Int64Bytes([]int64{int64(me * 7)}), 1, it, ab, 1, it, c); code != 0 {
							return fmt.Errorf("allgather code %d", code)
						}
						for r, v := range abi.Int64sOf(ab) {
							if v != int64(r*7) {
								return fmt.Errorf("allgather block %d = %d", r, v)
							}
						}

						// Alltoall.
						av := make([]int64, n)
						for d := 0; d < n; d++ {
							av[d] = int64(me*1000 + d)
						}
						arb := make([]byte, n*8)
						if code := p.Alltoall(abi.Int64Bytes(av), 1, it, arb, 1, it, c); code != 0 {
							return fmt.Errorf("alltoall code %d", code)
						}
						for s, v := range abi.Int64sOf(arb) {
							if v != int64(s*1000+me) {
								return fmt.Errorf("alltoall from %d = %d", s, v)
							}
						}
						return codeOf(p.Barrier(c))
					})
				})
			}
		}
	}
}

// TestWildcardsUseInjectedConsts verifies matching honors whatever
// constant vocabulary the implementation supplies — the property that
// lets three ABIs share one matcher.
func TestWildcardsUseInjectedConsts(t *testing.T) {
	pol := testPolicies()["treeish"]
	runSPMD(t, 3, pol, func(p *Proc) error {
		c := p.CommWorld
		bt := p.Predef(types.KindByte)
		if c.MyPos != 0 {
			return codeOf(p.Send([]byte{byte(c.MyPos)}, 1, bt, 0, 40+c.MyPos, c))
		}
		seen := map[int32]bool{}
		for i := 0; i < 2; i++ {
			buf := make([]byte, 1)
			var st Status
			if code := p.Recv(buf, 1, bt, testConsts.AnySource, testConsts.AnyTag, c, &st); code != 0 {
				return fmt.Errorf("wildcard recv code %d", code)
			}
			if st.Tag != 40+st.Source {
				return fmt.Errorf("tag %d for source %d", st.Tag, st.Source)
			}
			seen[st.Source] = true
		}
		if !seen[1] || !seen[2] {
			return fmt.Errorf("missing senders: %v", seen)
		}
		// PROC_NULL sentinel round-trips through the injected vocabulary.
		var st Status
		if code := p.Recv(nil, 0, bt, testConsts.ProcNull, 0, c, &st); code != 0 {
			return fmt.Errorf("proc-null recv code %d", code)
		}
		if st.Source != int32(testConsts.ProcNull) || st.Tag != int32(testConsts.AnyTag) {
			return fmt.Errorf("proc-null status %+v", st)
		}
		return nil
	})
}

// TestErrorCodesUseInjectedTable verifies the runtime reports errors in
// the implementation's own numbering.
func TestErrorCodesUseInjectedTable(t *testing.T) {
	pol := testPolicies()["tuned"]
	runSPMD(t, 1, pol, func(p *Proc) error {
		bt := p.Predef(types.KindByte)
		if code := p.Send(nil, 1, bt, 0, 0, nil); code != testCodes.ErrComm {
			return fmt.Errorf("nil comm = %d, want %d", code, testCodes.ErrComm)
		}
		if code := p.Send(nil, 1, nil, 0, 0, p.CommWorld); code != testCodes.ErrType {
			return fmt.Errorf("nil type = %d, want %d", code, testCodes.ErrType)
		}
		if code := p.Send(nil, 1, bt, 5, 0, p.CommWorld); code != testCodes.ErrRank {
			return fmt.Errorf("bad rank = %d, want %d", code, testCodes.ErrRank)
		}
		if code := p.Send(nil, -1, bt, 0, 0, p.CommWorld); code != testCodes.ErrCount {
			return fmt.Errorf("bad count = %d, want %d", code, testCodes.ErrCount)
		}
		if code := p.Bcast(nil, 1, bt, 7, p.CommWorld); code != testCodes.ErrRoot {
			return fmt.Errorf("bad root = %d, want %d", code, testCodes.ErrRoot)
		}
		return nil
	})
}

// TestTruncationCarriesInjectedCode checks the in-status error code uses
// the injected table too.
func TestTruncationCarriesInjectedCode(t *testing.T) {
	pol := testPolicies()["treeish"]
	runSPMD(t, 2, pol, func(p *Proc) error {
		bt := p.Predef(types.KindByte)
		if p.Rank() == 0 {
			return codeOf(p.Send(make([]byte, 100), 100, bt, 1, 0, p.CommWorld))
		}
		var st Status
		code := p.Recv(make([]byte, 10), 10, bt, 0, 0, p.CommWorld, &st)
		if code != testCodes.ErrTruncate {
			return fmt.Errorf("code = %d, want %d", code, testCodes.ErrTruncate)
		}
		if st.Error != int32(testCodes.ErrTruncate) || st.CountBytes != 10 {
			return fmt.Errorf("status = %+v", st)
		}
		return nil
	})
}

// TestCIDDeriversProduceDistinctStreams checks the per-implementation
// salt actually separates the context-id streams.
func TestCIDDeriversProduceDistinctStreams(t *testing.T) {
	a := FNV1aCIDDeriver()
	b := SaltedCIDDeriver('O')
	c := SaltedCIDDeriver('S')
	distinct := 0
	for ord := uint32(1); ord < 50; ord++ {
		x, y, z := a(1, ord), b(1, ord), c(1, ord)
		if x != y && y != z && x != z {
			distinct++
		}
		for _, v := range []uint32{x, y, z} {
			if v <= 2 || v&collCIDBit != 0 {
				t.Fatalf("derived cid %#x collides with reserved space", v)
			}
		}
	}
	if distinct < 45 {
		t.Fatalf("cid streams overlap too often: %d/49 fully distinct", distinct)
	}
}

// TestCommSplitAndDupIsolation: derived communicators built by the shared
// runtime must isolate traffic by cid.
func TestCommSplitAndDupIsolation(t *testing.T) {
	pol := testPolicies()["tuned"]
	runSPMD(t, 4, pol, func(p *Proc) error {
		c := p.CommWorld
		bt := p.Predef(types.KindByte)
		dup, code := p.CommDup(c)
		if code != 0 {
			return fmt.Errorf("dup code %d", code)
		}
		if dup.CID == c.CID {
			return fmt.Errorf("dup shares the parent's cid")
		}
		me := c.MyPos
		if me == 0 {
			if code := p.Send([]byte{1}, 1, bt, 1, 0, c); code != 0 {
				return codeOf(code)
			}
			if code := p.Send([]byte{2}, 1, bt, 1, 0, dup); code != 0 {
				return codeOf(code)
			}
		}
		if me == 1 {
			buf := make([]byte, 1)
			if code := p.Recv(buf, 1, bt, 0, 0, dup, nil); code != 0 || buf[0] != 2 {
				return fmt.Errorf("dup recv = %d (code %d)", buf[0], code)
			}
			if code := p.Recv(buf, 1, bt, 0, 0, c, nil); code != 0 || buf[0] != 1 {
				return fmt.Errorf("world recv = %d (code %d)", buf[0], code)
			}
		}
		sub, code := p.CommSplit(c, me%2, -me)
		if code != 0 {
			return fmt.Errorf("split code %d", code)
		}
		if sub.Size() != 2 {
			return fmt.Errorf("split size = %d", sub.Size())
		}
		out := make([]byte, 8)
		it := p.Predef(types.KindInt64)
		if code := p.Allreduce(abi.Int64Bytes([]int64{int64(me)}), out, 1, it, p.PredefOp(ops.OpSum), sub); code != 0 {
			return fmt.Errorf("split allreduce code %d", code)
		}
		want := int64(0 + 2)
		if me%2 == 1 {
			want = 1 + 3
		}
		if got := abi.Int64sOf(out)[0]; got != want {
			return fmt.Errorf("split allreduce = %d, want %d", got, want)
		}
		return nil
	})
}

// TestCommSplitColorsNeverAlias: colors congruent mod 256 must yield
// distinct context ids (the historical implementations truncated the
// color to 8 bits, aliasing such subcommunicators onto one cid and
// silently cross-matching their traffic).
func TestCommSplitColorsNeverAlias(t *testing.T) {
	pol := testPolicies()["treeish"]
	cids := make([]uint32, 2)
	runSPMD(t, 2, pol, func(p *Proc) error {
		me := p.CommWorld.MyPos
		sub, code := p.CommSplit(p.CommWorld, 1+256*me, 0)
		if code != 0 {
			return fmt.Errorf("split code %d", code)
		}
		if sub.Size() != 1 {
			return fmt.Errorf("split size = %d, want singleton", sub.Size())
		}
		cids[me] = sub.CID
		return nil
	})
	if cids[0] == cids[1] {
		t.Fatalf("colors 1 and 257 aliased onto cid %#x", cids[0])
	}
}

func codeOf(code int) error {
	if code != 0 {
		return fmt.Errorf("code %d", code)
	}
	return nil
}
