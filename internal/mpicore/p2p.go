package mpicore

import (
	"repro/internal/fabric"
	"repro/internal/trace"
)

// traceMatch records a p2p match on the rank's trace track. name is the
// protocol ("match-eager", "match-rdv") — deliberately NOT the queue the
// match came from: whether a message is matched posted or unexpected is
// an engine-timing artifact, and the cross-engine multiset contract
// compares names. The queue goes in the args instead.
func (p *Proc) traceMatch(name string, src int, tag int32, path string) {
	if tr := p.tr; tr != nil {
		tr.Instant(trace.CatP2P, name, p.ep.Clock().Now(),
			trace.Arg{Key: "src", Val: trace.Itoa(src)},
			trace.Arg{Key: "tag", Val: trace.Itoa(int(tag))},
			trace.Arg{Key: "path", Val: path})
	}
}

// Progress dispatches one arrived envelope. With block=true it waits
// for traffic; otherwise it returns immediately when nothing has
// arrived. Arrivals are drained from the fabric mailbox a whole burst
// per lock hop into p.batch, but served — clock-accounted and
// dispatched — strictly one per Progress call. The one-per-call pace is
// load-bearing for the virtual clock: an envelope must be accounted at
// the Progress call that consumes it, after any sends the caller issued
// in between have advanced the clock. Accounting a queued burst eagerly
// would fold each AdvanceTo(arrival) in at a lower clock value and
// inflate simulated latencies (observed: ~2x on the 8-rank gate
// benches). MPI-style progress is driven only from inside MPI calls,
// which this reproduces: the engine runs inside Send/Recv/Wait/etc.
func (p *Proc) Progress(block bool) int {
	if p.batchPos == len(p.batch) {
		p.batch = p.batch[:0]
		p.batchPos = 0
		if block {
			p.batch = p.ep.RecvBatch(p.batch)
			if len(p.batch) == 0 {
				return p.E.ErrOther // world closed under us
			}
		} else {
			p.batch = p.ep.TryRecvBatch(p.batch)
			if len(p.batch) == 0 {
				return p.E.Success
			}
		}
	}
	e := p.batch[p.batchPos]
	p.batch[p.batchPos] = nil
	p.batchPos++
	p.ep.AccountRecv(e)
	p.dispatch(e)
	return p.E.Success
}

// dispatch routes one arrived envelope through the eager/rendezvous
// protocol state machine. Envelopes consumed here go back to the pool;
// only unmatched eager/RTS traffic is retained (on the unexpected
// queue, until a matching receive consumes it in postRecv). Payload
// slices may outlive their envelope — the pool recycles structs only.
func (p *Proc) dispatch(e *fabric.Envelope) {
	if p.repl != nil && !p.replAdmit(e) {
		return // duplicate replica delivery, already recycled
	}
	switch e.Proto {
	case fabric.ProtoEager:
		if r := p.matchPosted(e); r != nil {
			p.deliverPayload(r, e.Src, e.Tag, e.Payload)
			p.traceMatch("match-eager", e.Src, e.Tag, "posted")
			fabric.PutEnvelope(e)
		} else {
			p.unexpected = append(p.unexpected, e)
		}
	case fabric.ProtoRTS:
		if r := p.matchPosted(e); r != nil {
			p.acceptRTS(e, r)
			p.traceMatch("match-rdv", e.Src, e.Tag, "posted")
			fabric.PutEnvelope(e)
		} else {
			p.unexpected = append(p.unexpected, e)
		}
	case fabric.ProtoCTS:
		if s, ok := p.pendingSend[e.Seq]; ok {
			delete(p.pendingSend, e.Seq)
			d := fabric.GetEnvelope()
			d.Dst = e.Src
			d.CID = s.cid
			d.Proto = fabric.ProtoData
			d.Seq = e.Seq
			d.Payload = s.payload
			if s.owned {
				p.ep.SendOwned(d)
			} else {
				p.ep.Send(d)
			}
			s.payload = nil
			s.done = true
			s.code = p.E.Success
		}
		fabric.PutEnvelope(e)
	case fabric.ProtoData:
		key := seqKey{peer: e.Src, seq: e.Seq}
		if r, ok := p.awaitingData[key]; ok {
			delete(p.awaitingData, key)
			p.deliverPayload(r, e.Src, r.status.Tag, e.Payload)
		}
		fabric.PutEnvelope(e)
	case fabric.ProtoCtrl:
		p.handleCtrl(e)
		fabric.PutEnvelope(e)
	}
}

// envMatches applies the matching rule. Wildcards use the owning
// implementation's constant values (Consts), so each ABI's matching
// semantics are honored without translation.
func (p *Proc) envMatches(r *Request, e *fabric.Envelope) bool {
	if e.CID != r.cid {
		return false
	}
	if r.srcWorld != p.K.AnySource && e.Src != r.srcWorld {
		return false
	}
	if r.tag != p.K.AnyTag && e.Tag != int32(r.tag) {
		return false
	}
	return true
}

// matchPosted finds and removes the oldest posted recv matching e.
func (p *Proc) matchPosted(e *fabric.Envelope) *Request {
	for i, r := range p.posted {
		if p.envMatches(r, e) {
			p.posted = append(p.posted[:i], p.posted[i+1:]...)
			return r
		}
	}
	return nil
}

// matchUnexpected finds and removes the oldest unexpected envelope
// matching a fresh recv.
func (p *Proc) matchUnexpected(r *Request) *fabric.Envelope {
	for i, e := range p.unexpected {
		if p.envMatches(r, e) {
			p.unexpected = append(p.unexpected[:i], p.unexpected[i+1:]...)
			return e
		}
	}
	return nil
}

// deliverPayload completes a receive with the given packed payload.
func (p *Proc) deliverPayload(r *Request, srcWorld int, tag int32, payload []byte) {
	r.status.Source = int32(srcWorld) // world rank; converted to comm rank below
	if r.comm != nil {
		r.status.Source = int32(r.comm.PosOf(srcWorld))
	}
	r.status.Tag = tag
	r.done = true
	if r.raw {
		r.rawOut = payload
		r.status.CountBytes = uint64(len(payload))
		r.code = p.E.Success
		r.status.Error = int32(p.E.Success)
		return
	}
	capacity := r.count * r.dt.T.Size()
	n := len(payload)
	if n > capacity {
		n = capacity
		r.code = p.E.ErrTruncate
	} else {
		r.code = p.E.Success
	}
	if _, err := r.dt.T.UnpackPartial(payload[:n], r.buf); err != nil {
		r.code = p.E.ErrIntern
	}
	r.status.CountBytes = uint64(n)
	r.status.Error = int32(r.code)
}

// acceptRTS answers a rendezvous request-to-send for a matched recv.
func (p *Proc) acceptRTS(e *fabric.Envelope, r *Request) {
	// Remember the tag now; the data envelope only carries the seq.
	r.status.Tag = e.Tag
	p.awaitingData[seqKey{peer: e.Src, seq: e.Seq}] = r
	cts := fabric.GetEnvelope()
	cts.Dst = e.Src
	cts.CID = e.CID
	cts.Proto = fabric.ProtoCTS
	cts.Seq = e.Seq
	p.ep.Send(cts)
}

// postRecv registers a receive request, matching the unexpected queue
// first. Data the peer sent before dying is still deliverable (the
// fail-stop ordering guarantees it was dispatched ahead of the failure
// notice), so the queue match runs before the doom checks; a recv that
// can no longer be satisfied completes immediately with the ULFM error
// instead of blocking forever.
func (p *Proc) postRecv(r *Request) {
	if e := p.matchUnexpected(r); e != nil {
		switch e.Proto {
		case fabric.ProtoEager:
			p.deliverPayload(r, e.Src, e.Tag, e.Payload)
			p.traceMatch("match-eager", e.Src, e.Tag, "unexpected")
		case fabric.ProtoRTS:
			p.acceptRTS(e, r)
			p.traceMatch("match-rdv", e.Src, e.Tag, "unexpected")
		}
		fabric.PutEnvelope(e)
		return
	}
	if code, doomed := p.recvDoom(r); doomed {
		p.failRequest(r, code)
		return
	}
	p.posted = append(p.posted, r)
}

// sendInternal implements blocking and nonblocking sends on an arbitrary
// context id. Payloads at or below the policy's eager threshold (and
// self-sends) travel with the envelope; larger ones run the RTS/CTS/Data
// rendezvous. Returns the request for rendezvous progress, or nil if the
// send completed immediately (eager path). owned=true transfers packed
// to the receiver without a defensive copy — legal only when the caller
// never touches packed again (see Request.owned).
func (p *Proc) sendInternal(packed []byte, destWorld int, tag int32, cid uint32, owned bool) *Request {
	if p.repl != nil {
		p.replSend(packed, destWorld, tag, cid, owned)
		return nil
	}
	if len(packed) <= p.pol.EagerMax || destWorld == p.rank {
		e := fabric.GetEnvelope()
		e.Dst = destWorld
		e.CID = cid
		e.Tag = tag
		e.Proto = fabric.ProtoEager
		e.Payload = packed
		if owned {
			p.ep.SendOwned(e)
		} else {
			p.ep.Send(e)
		}
		return nil
	}
	p.nextRdvSeq++
	seq := p.nextRdvSeq
	r := p.getReq()
	r.kind = reqSend
	r.payload = packed
	r.dest = destWorld
	r.seq = seq
	r.cid = cid
	r.owned = owned
	p.pendingSend[seq] = r
	e := fabric.GetEnvelope()
	e.Dst = destWorld
	e.CID = cid
	e.Tag = tag
	e.Proto = fabric.ProtoRTS
	e.Seq = seq
	e.Hdr = uint64(len(packed))
	p.ep.Send(e)
	return r
}

// validateRankTag checks peer and tag arguments against a communicator,
// in the implementation's own constant vocabulary.
func (p *Proc) validateRankTag(c *Comm, peer, tag int, sending bool) int {
	if peer == p.K.ProcNull {
		return p.E.Success
	}
	if sending {
		if tag < 0 || tag > p.K.TagUB {
			return p.E.ErrTag
		}
	} else if tag != p.K.AnyTag && (tag < 0 || tag > p.K.TagUB) {
		return p.E.ErrTag
	}
	if !sending && peer == p.K.AnySource {
		return p.E.Success
	}
	if peer < 0 || peer >= c.Size() {
		return p.E.ErrRank
	}
	return p.E.Success
}

// PackElems packs count elements of dt from buf into a fresh wire buffer.
func (p *Proc) PackElems(dt *Type, buf []byte, count int) ([]byte, int) {
	if count == 0 {
		return nil, p.E.Success
	}
	out := make([]byte, count*dt.T.Size())
	if _, err := dt.T.Pack(buf, count, out); err != nil {
		return nil, p.E.ErrBuffer
	}
	return out, p.E.Success
}

// checkCommType is the shared argument prologue of the p2p calls. It
// also enforces revocation: once a communicator is revoked, every
// regular operation on it answers ErrRevoked without touching the wire
// (ULFM's poisoning rule) — only the recovery collectives in ulfm.go
// keep working.
func (p *Proc) checkCommType(c *Comm, dt *Type) int {
	if c == nil {
		return p.E.ErrComm
	}
	if p.ft.Revoked(c.CID) {
		return p.E.ErrRevoked
	}
	if dt == nil || !dt.T.Committed() {
		return p.E.ErrType
	}
	return p.E.Success
}

// Send is blocking standard-mode MPI_Send.
func (p *Proc) Send(buf []byte, count int, dt *Type, dest, tag int, c *Comm) int {
	if code := p.checkCommType(c, dt); code != p.E.Success {
		return code
	}
	if code := p.validateRankTag(c, dest, tag, true); code != p.E.Success {
		return code
	}
	if count < 0 {
		return p.E.ErrCount
	}
	if dest == p.K.ProcNull {
		return p.E.Success
	}
	if p.ft.Failed(c.Ranks[dest]) {
		return p.E.ErrProcFailed
	}
	packed, code := p.PackElems(dt, buf, count)
	if code != p.E.Success {
		return code
	}
	r := p.sendInternal(packed, c.Ranks[dest], int32(tag), c.CID, true)
	for r != nil && !r.done {
		if code := p.Progress(true); code != p.E.Success {
			return code
		}
	}
	if r != nil {
		code := r.code
		p.putReq(r)
		return code
	}
	return p.E.Success
}

// buildRecv validates arguments and constructs a recv request (nil for
// PROC_NULL sources).
func (p *Proc) buildRecv(buf []byte, count int, dt *Type, source, tag int, c *Comm) (*Request, int) {
	if code := p.checkCommType(c, dt); code != p.E.Success {
		return nil, code
	}
	if code := p.validateRankTag(c, source, tag, false); code != p.E.Success {
		return nil, code
	}
	if count < 0 {
		return nil, p.E.ErrCount
	}
	if source == p.K.ProcNull {
		return nil, p.E.Success
	}
	srcWorld := p.K.AnySource
	if source != p.K.AnySource {
		srcWorld = c.Ranks[source]
	}
	r := p.getReq()
	r.kind = reqRecv
	r.comm = c
	r.buf = buf
	r.count = count
	r.dt = dt
	r.srcWorld = srcWorld
	r.tag = tag
	r.cid = c.CID
	return r, p.E.Success
}

// ProcNullStatus fills st with the implementation's PROC_NULL sentinels.
func (p *Proc) ProcNullStatus(st *Status) {
	st.Source = int32(p.K.ProcNull)
	st.Tag = int32(p.K.AnyTag)
	st.Error = int32(p.E.Success)
	st.CountBytes = 0
}

// Recv is blocking MPI_Recv. A nil st discards the status.
func (p *Proc) Recv(buf []byte, count int, dt *Type, source, tag int, c *Comm, st *Status) int {
	r, code := p.buildRecv(buf, count, dt, source, tag, c)
	if code != p.E.Success {
		return code
	}
	if r == nil { // PROC_NULL
		if st != nil {
			p.ProcNullStatus(st)
		}
		return p.E.Success
	}
	p.postRecv(r)
	for !r.done {
		if code := p.Progress(true); code != p.E.Success {
			return code
		}
	}
	if st != nil {
		*st = r.status
	}
	code = r.code
	p.putReq(r)
	return code
}

// Isend is nonblocking MPI_Isend. The returned request must be completed
// with Wait/Test/Waitall; a PROC_NULL destination (and the eager path)
// yield an already-done request.
func (p *Proc) Isend(buf []byte, count int, dt *Type, dest, tag int, c *Comm) (*Request, int) {
	if code := p.checkCommType(c, dt); code != p.E.Success {
		return nil, code
	}
	if code := p.validateRankTag(c, dest, tag, true); code != p.E.Success {
		return nil, code
	}
	if count < 0 {
		return nil, p.E.ErrCount
	}
	if dest == p.K.ProcNull {
		return &Request{kind: reqSend, done: true, code: p.E.Success}, p.E.Success
	}
	if p.ft.Failed(c.Ranks[dest]) {
		return nil, p.E.ErrProcFailed
	}
	packed, code := p.PackElems(dt, buf, count)
	if code != p.E.Success {
		return nil, code
	}
	r := p.sendInternal(packed, c.Ranks[dest], int32(tag), c.CID, true)
	if r == nil {
		r = &Request{kind: reqSend, done: true, code: p.E.Success}
	}
	return r, p.E.Success
}

// Irecv is nonblocking MPI_Irecv.
func (p *Proc) Irecv(buf []byte, count int, dt *Type, source, tag int, c *Comm) (*Request, int) {
	r, code := p.buildRecv(buf, count, dt, source, tag, c)
	if code != p.E.Success {
		return nil, code
	}
	if r == nil { // PROC_NULL: complete immediately
		pn := &Request{kind: reqRecv, done: true, code: p.E.Success}
		p.ProcNullStatus(&pn.status)
		return pn, p.E.Success
	}
	p.postRecv(r)
	return r, p.E.Success
}

// Wait completes one request. A nil request is the null request: it
// completes immediately with a PROC_NULL status.
func (p *Proc) Wait(r *Request, st *Status) int {
	if r == nil {
		if st != nil {
			p.ProcNullStatus(st)
		}
		return p.E.Success
	}
	for !r.done {
		if code := p.Progress(true); code != p.E.Success {
			return code
		}
	}
	if st != nil {
		*st = r.status
	}
	return r.code
}

// Test polls one request; outcome=(completed, code).
func (p *Proc) Test(r *Request, st *Status) (bool, int) {
	if r == nil {
		if st != nil {
			p.ProcNullStatus(st)
		}
		return true, p.E.Success
	}
	if !r.done {
		if code := p.Progress(false); code != p.E.Success {
			return false, code
		}
	}
	if !r.done {
		return false, p.E.Success
	}
	if st != nil {
		*st = r.status
	}
	return true, r.code
}

// Waitall completes a set of requests. sts may be nil or match len(reqs).
func (p *Proc) Waitall(reqs []*Request, sts []Status) int {
	if sts != nil && len(sts) != len(reqs) {
		return p.E.ErrArg
	}
	rc := p.E.Success
	for i, r := range reqs {
		var st Status
		if code := p.Wait(r, &st); code != p.E.Success {
			rc = code
		}
		if sts != nil {
			sts[i] = st
		}
	}
	return rc
}

// Sendrecv posts the receive, runs the send, then completes the receive —
// the deadlock-free composite MPI_Sendrecv.
func (p *Proc) Sendrecv(sendbuf []byte, scount int, stype *Type, dest, stag int,
	recvbuf []byte, rcount int, rtype *Type, source, rtag int,
	c *Comm, st *Status) int {
	rr, code := p.Irecv(recvbuf, rcount, rtype, source, rtag, c)
	if code != p.E.Success {
		return code
	}
	if code := p.Send(sendbuf, scount, stype, dest, stag, c); code != p.E.Success {
		return code
	}
	code = p.Wait(rr, st)
	p.putReq(rr)
	return code
}
