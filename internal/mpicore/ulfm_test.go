package mpicore

import (
	"fmt"
	"testing"

	"repro/internal/fabric"
	"repro/internal/simnet"
	"repro/internal/types"
)

// ulfmWorld builds a world plus one runtime instance per rank without
// spawning goroutines (single-threaded tests drive ranks by hand).
func ulfmWorld(t *testing.T, n int, pol Policy) (*fabric.World, []*Proc) {
	t.Helper()
	w, err := fabric.NewWorld(simnet.SingleNode(n))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	procs := make([]*Proc, n)
	for r := 0; r < n; r++ {
		procs[r] = NewProc(w, r, testConsts, testCodes, pol)
	}
	return w, procs
}

// TestFailureSweepCompletesPendingRecv: a posted receive from a rank
// that dies completes with ErrProcFailed when the failure notice lands,
// instead of hanging.
func TestFailureSweepCompletesPendingRecv(t *testing.T) {
	pol := testPolicies()["treeish"]
	w, procs := ulfmWorld(t, 2, pol)
	p0 := procs[0]
	buf := make([]byte, 8)
	r, code := p0.Irecv(buf, 1, p0.Predef(types.KindInt64), 1, 7, p0.CommWorld)
	if code != testCodes.Success {
		t.Fatalf("Irecv = %d", code)
	}
	w.Kill(1)
	w.NotifyFailure(1)
	if code := p0.Wait(r, nil); code != testCodes.ErrProcFailed {
		t.Fatalf("Wait on dead source = %d, want ErrProcFailed %d", code, testCodes.ErrProcFailed)
	}
	// New operations against the dead rank fail immediately, in both
	// directions.
	if code := p0.Send(buf, 1, p0.Predef(types.KindInt64), 1, 7, p0.CommWorld); code != testCodes.ErrProcFailed {
		t.Fatalf("Send to dead rank = %d", code)
	}
	if code := p0.Recv(buf, 1, p0.Predef(types.KindInt64), 1, 7, p0.CommWorld, nil); code != testCodes.ErrProcFailed {
		t.Fatalf("Recv from dead rank = %d", code)
	}
}

// TestDataFromDeadRankStillDelivers: fail-stop ordering — a message the
// victim sent before dying is dispatched ahead of the failure notice
// and must still deliver (ULFM completes what can complete).
func TestDataFromDeadRankStillDelivers(t *testing.T) {
	pol := testPolicies()["treeish"]
	w, procs := ulfmWorld(t, 2, pol)
	p0, p1 := procs[0], procs[1]
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if code := p1.Send(payload, 8, p1.Predef(types.KindByte), 0, 3, p1.CommWorld); code != testCodes.Success {
		t.Fatalf("Send = %d", code)
	}
	w.Kill(1)
	w.NotifyFailure(1)
	got := make([]byte, 8)
	var st Status
	if code := p0.Recv(got, 8, p0.Predef(types.KindByte), 1, 3, p0.CommWorld, &st); code != testCodes.Success {
		t.Fatalf("Recv of pre-death payload = %d", code)
	}
	if string(got) != string(payload) {
		t.Fatalf("payload = %v", got)
	}
	// The next receive, with nothing in flight, fails.
	if code := p0.Recv(got, 8, p0.Predef(types.KindByte), 1, 3, p0.CommWorld, nil); code != testCodes.ErrProcFailed {
		t.Fatalf("post-death Recv = %d, want ErrProcFailed", code)
	}
}

// TestAnySourceAckCycle: wildcard receives raise ErrProcFailed while an
// unacknowledged failure exists, and work again after CommFailureAck —
// with the acked group reported by CommFailureGetAcked.
func TestAnySourceAckCycle(t *testing.T) {
	pol := testPolicies()["treeish"]
	w, procs := ulfmWorld(t, 3, pol)
	p0 := procs[0]
	w.Kill(2)
	w.NotifyFailure(2)
	buf := make([]byte, 8)
	bt := p0.Predef(types.KindInt64)
	if code := p0.Recv(buf, 1, bt, testConsts.AnySource, 5, p0.CommWorld, nil); code != testCodes.ErrProcFailed {
		t.Fatalf("wildcard recv over unacked failure = %d, want ErrProcFailed", code)
	}
	if code := p0.CommFailureAck(p0.CommWorld); code != testCodes.Success {
		t.Fatalf("ack = %d", code)
	}
	g, code := p0.CommFailureGetAcked(p0.CommWorld)
	if code != testCodes.Success || len(g.Ranks) != 1 || g.Ranks[0] != 2 {
		t.Fatalf("acked group = %+v (code %d)", g, code)
	}
	// Re-armed: the wildcard recv now matches live traffic.
	if code := procs[1].Send([]byte{9, 0, 0, 0, 0, 0, 0, 0}, 1, procs[1].Predef(types.KindInt64), 0, 5, procs[1].CommWorld); code != testCodes.Success {
		t.Fatalf("Send = %d", code)
	}
	var st Status
	if code := p0.Recv(buf, 1, bt, testConsts.AnySource, 5, p0.CommWorld, &st); code != testCodes.Success {
		t.Fatalf("wildcard recv after ack = %d", code)
	}
	if st.Source != 1 {
		t.Fatalf("source = %d", st.Source)
	}
}

// TestRevokePoisonsEverythingButULFM: after a revocation notice, every
// regular operation answers ErrRevoked — p2p, probes, collectives,
// communicator creation — while Shrink and Agree still work.
func TestRevokePoisonsEverythingButULFM(t *testing.T) {
	pol := testPolicies()["treeish"]
	_, procs := ulfmWorld(t, 2, pol)
	p0, p1 := procs[0], procs[1]
	if code := p0.CommRevoke(p0.CommWorld); code != testCodes.Success {
		t.Fatalf("revoke = %d", code)
	}
	// Deliver the revoke notice to rank 1.
	if code := p1.Progress(true); code != testCodes.Success {
		t.Fatalf("progress = %d", code)
	}
	if !p1.CommRevoked(p1.CommWorld) {
		t.Fatal("revocation did not propagate")
	}
	for rank, p := range []*Proc{p0, p1} {
		buf := make([]byte, 8)
		bt := p.Predef(types.KindInt64)
		if code := p.Send(buf, 1, bt, 1-rank, 1, p.CommWorld); code != testCodes.ErrRevoked {
			t.Errorf("rank %d Send on revoked comm = %d, want ErrRevoked", rank, code)
		}
		if _, code := p.Isend(buf, 1, bt, 1-rank, 1, p.CommWorld); code != testCodes.ErrRevoked {
			t.Errorf("rank %d Isend = %d", rank, code)
		}
		if code := p.Recv(buf, 1, bt, 1-rank, 1, p.CommWorld, nil); code != testCodes.ErrRevoked {
			t.Errorf("rank %d Recv = %d", rank, code)
		}
		if code := p.Probe(1-rank, 1, p.CommWorld, nil); code != testCodes.ErrRevoked {
			t.Errorf("rank %d Probe = %d", rank, code)
		}
		if _, code := p.Iprobe(1-rank, 1, p.CommWorld, nil); code != testCodes.ErrRevoked {
			t.Errorf("rank %d Iprobe = %d", rank, code)
		}
		if code := p.Barrier(p.CommWorld); code != testCodes.ErrRevoked {
			t.Errorf("rank %d Barrier = %d", rank, code)
		}
		if code := p.Bcast(buf, 1, bt, 0, p.CommWorld); code != testCodes.ErrRevoked {
			t.Errorf("rank %d Bcast = %d", rank, code)
		}
		if _, code := p.CommDup(p.CommWorld); code != testCodes.ErrRevoked {
			t.Errorf("rank %d CommDup = %d", rank, code)
		}
		if _, code := p.CommSplit(p.CommWorld, 0, 0); code != testCodes.ErrRevoked {
			t.Errorf("rank %d CommSplit = %d", rank, code)
		}
	}
	// Shrink still works on the revoked communicator (no one died, so it
	// reproduces the full membership under a fresh cid) — driven from
	// both ranks via goroutines since it communicates.
	type res struct {
		nc   *Comm
		code int
	}
	out := make(chan res, 2)
	for _, p := range procs {
		go func(p *Proc) {
			nc, code := p.CommShrink(p.CommWorld)
			out <- res{nc, code}
		}(p)
	}
	a, b := <-out, <-out
	if a.code != testCodes.Success || b.code != testCodes.Success {
		t.Fatalf("shrink codes = %d, %d", a.code, b.code)
	}
	if a.nc.CID != b.nc.CID {
		t.Fatalf("survivors derived different cids: %d vs %d", a.nc.CID, b.nc.CID)
	}
	if a.nc.Size() != 2 {
		t.Fatalf("shrink of intact comm has size %d", a.nc.Size())
	}
	if a.nc.CID == p0.CommWorld.CID || p0.ft.Revoked(a.nc.CID) {
		t.Fatal("shrunken comm inherited the parent's cid or revocation")
	}
}

// TestShrinkAndAgreeAcrossPolicies runs the recovery collectives under
// both algorithm personalities with a mid-world death: all survivors
// must agree on the membership, the context id, and the AND-folded
// agreement flag.
func TestShrinkAndAgreeAcrossPolicies(t *testing.T) {
	for name, pol := range testPolicies() {
		for _, n := range []int{2, 3, 5, 8} {
			t.Run(fmt.Sprintf("%s/n%d", name, n), func(t *testing.T) {
				victim := n / 2
				runSPMD(t, n, pol, func(p *Proc) error {
					me := p.Rank()
					if me == victim {
						// The victim "dies" before the collective: kill +
						// notify, then walk away (runSPMD still joins it).
						p.World().Kill(victim)
						p.World().NotifyFailure(victim)
						return nil
					}
					nc, code := p.CommShrink(p.CommWorld)
					if code != testCodes.Success {
						return fmt.Errorf("shrink = %d", code)
					}
					if nc.Size() != n-1 {
						return fmt.Errorf("survivors = %d, want %d", nc.Size(), n-1)
					}
					for _, w := range nc.Ranks {
						if w == victim {
							return fmt.Errorf("victim %d still a member", victim)
						}
					}
					// Flag agreement on the shrunken comm: AND over
					// distinct per-rank masks.
					flag := ^uint64(0) &^ (1 << uint(me))
					agreed, code := p.CommAgree(nc, flag)
					if code != testCodes.Success {
						return fmt.Errorf("agree = %d", code)
					}
					want := ^uint64(0)
					for _, w := range nc.Ranks {
						want &^= 1 << uint(w)
					}
					if agreed != want {
						return fmt.Errorf("agreed = %x, want %x", agreed, want)
					}
					// The shrunken comm is fully usable: a collective over
					// the survivors completes.
					if code := p.Barrier(nc); code != testCodes.Success {
						return fmt.Errorf("barrier on shrunken comm = %d", code)
					}
					return nil
				})
			})
		}
	}
}

// TestCollectiveFailsInsteadOfHanging: kill a rank while the others run
// a collective; every survivor's collective must complete with
// ErrProcFailed (or ErrRevoked after a peer revokes) rather than hang —
// this is the progress-engine guarantee the whole subsystem rests on.
func TestCollectiveFailsInsteadOfHanging(t *testing.T) {
	pol := testPolicies()["tuned"]
	const n, victim = 4, 2
	runSPMD(t, n, pol, func(p *Proc) error {
		if p.Rank() == victim {
			p.World().Kill(victim)
			p.World().NotifyFailure(victim)
			return nil
		}
		buf := make([]byte, 64)
		code := p.Bcast(buf, 64, p.Predef(types.KindByte), 0, p.CommWorld)
		// A survivor may see the failure itself (ErrProcFailed), see a
		// faster peer's revocation first (ErrRevoked), or complete the
		// collective if the victim's death didn't sit on its data path.
		if code != testCodes.ErrProcFailed && code != testCodes.ErrRevoked && code != testCodes.Success {
			return fmt.Errorf("bcast = %d, want ErrProcFailed/ErrRevoked/Success", code)
		}
		// Whatever each survivor observed, recovery must converge.
		p.CommRevoke(p.CommWorld)
		nc, code := p.CommShrink(p.CommWorld)
		if code != testCodes.Success {
			return fmt.Errorf("shrink = %d", code)
		}
		if code := p.Barrier(nc); code != testCodes.Success {
			return fmt.Errorf("post-recovery barrier = %d", code)
		}
		return nil
	})
}
