package mpicore

import (
	"sort"

	"repro/internal/abi"
	"repro/internal/ops"
	"repro/internal/types"
)

// CommDup duplicates a communicator into a fresh context id. Like the real
// call it is collective; the barrier models the agreement round-trip and
// enforces that every member participates. The implementation layer wraps
// the returned Comm in its handle representation and calls Install.
func (p *Proc) CommDup(c *Comm) (*Comm, int) {
	if c == nil {
		return nil, p.E.ErrComm
	}
	if p.ft.Revoked(c.CID) {
		return nil, p.E.ErrRevoked
	}
	if code := p.Barrier(c); code != p.E.Success {
		return nil, code
	}
	c.ChldSeq++
	nc := &Comm{
		CID:   p.pol.DeriveCID(c.CID, c.ChldSeq),
		Ranks: append([]int(nil), c.Ranks...),
		MyPos: c.MyPos,
	}
	p.Install(nc)
	return nc, p.E.Success
}

// CommSplit partitions a communicator by color, ordering members by (key,
// parent rank). Color Undefined yields (nil, Success) — the null
// communicator. The membership exchange runs as an allgather on the
// parent, like the real implementations'.
func (p *Proc) CommSplit(c *Comm, color, key int) (*Comm, int) {
	if c == nil {
		return nil, p.E.ErrComm
	}
	if p.ft.Revoked(c.CID) {
		return nil, p.E.ErrRevoked
	}
	n := c.Size()
	mine := abi.Int64Bytes([]int64{int64(color), int64(key)})
	all := make([]byte, n*16)
	bt := p.Predef(types.KindByte)
	if code := p.Allgather(mine, 16, bt, all, 16, bt, c); code != p.E.Success {
		return nil, code
	}
	c.ChldSeq++
	ordinal := c.ChldSeq
	if color == p.K.Undefined {
		return nil, p.E.Success
	}
	type member struct{ key, parentRank int }
	var members []member
	for r := 0; r < n; r++ {
		vals := abi.Int64sOf(all[r*16 : (r+1)*16])
		if int(vals[0]) == color {
			members = append(members, member{key: int(vals[1]), parentRank: r})
		}
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].key != members[j].key {
			return members[i].key < members[j].key
		}
		return members[i].parentRank < members[j].parentRank
	})
	ranks := make([]int, len(members))
	myPos := -1
	for i, m := range members {
		ranks[i] = c.Ranks[m.parentRank]
		if m.parentRank == c.MyPos {
			myPos = i
		}
	}
	// Mix the full color into the derivation ordinal (Weyl multiply):
	// every member of a subgroup agrees on (ordinal, color), so every
	// member derives the same cid, while distinct colors in the same
	// split can never alias. (The historical implementations truncated
	// the color to its low 8 bits, silently aliasing colors congruent
	// mod 256 onto one context id.)
	nc := &Comm{
		CID:   p.pol.DeriveCID(c.CID, ordinal<<8^uint32(color)*0x9e3779b9),
		Ranks: ranks,
		MyPos: myPos,
	}
	p.Install(nc)
	return nc, p.E.Success
}

// CommCreate builds a communicator from a subgroup; callers outside the
// group receive (nil, Success). Collective over the parent.
func (p *Proc) CommCreate(c *Comm, g *Group) (*Comm, int) {
	if c == nil {
		return nil, p.E.ErrComm
	}
	if p.ft.Revoked(c.CID) {
		return nil, p.E.ErrRevoked
	}
	if g == nil {
		return nil, p.E.ErrGroup
	}
	if code := p.Barrier(c); code != p.E.Success {
		return nil, code
	}
	c.ChldSeq++
	myPos := -1
	for i, w := range g.Ranks {
		if w == p.rank {
			myPos = i
		}
	}
	if myPos == -1 {
		return nil, p.E.Success
	}
	nc := &Comm{
		CID:   p.pol.DeriveCID(c.CID, c.ChldSeq|0x40000000),
		Ranks: append([]int(nil), g.Ranks...),
		MyPos: myPos,
	}
	p.Install(nc)
	return nc, p.E.Success
}

// CommGroup extracts a communicator's group.
func (p *Proc) CommGroup(c *Comm) (*Group, int) {
	if c == nil {
		return nil, p.E.ErrComm
	}
	return &Group{Ranks: append([]int(nil), c.Ranks...), MyPos: c.MyPos}, p.E.Success
}

// CommFree releases a dynamic communicator from the context-id index.
// Protecting the predefined communicators is the implementation layer's
// job (it owns the handle identity check).
func (p *Proc) CommFree(c *Comm) int {
	if c == nil {
		return p.E.ErrComm
	}
	if c == p.CommWorld || c == p.CommSelf {
		return p.E.ErrComm
	}
	p.Uninstall(c)
	p.ft.Forget(c.CID)
	return p.E.Success
}

// GroupSize mirrors MPI_Group_size.
func (p *Proc) GroupSize(g *Group) (int, int) {
	if g == nil {
		return 0, p.E.ErrGroup
	}
	return len(g.Ranks), p.E.Success
}

// GroupRank mirrors MPI_Group_rank (Undefined when not a member).
func (p *Proc) GroupRank(g *Group) (int, int) {
	if g == nil {
		return 0, p.E.ErrGroup
	}
	if g.MyPos < 0 {
		return p.K.Undefined, p.E.Success
	}
	return g.MyPos, p.E.Success
}

// GroupIncl selects the listed ranks into a new group, in order.
func (p *Proc) GroupIncl(g *Group, ranksIn []int) (*Group, int) {
	if g == nil {
		return nil, p.E.ErrGroup
	}
	worlds := make([]int, len(ranksIn))
	myPos := -1
	for i, r := range ranksIn {
		if r < 0 || r >= len(g.Ranks) {
			return nil, p.E.ErrRank
		}
		worlds[i] = g.Ranks[r]
		if worlds[i] == p.rank {
			myPos = i
		}
	}
	return &Group{Ranks: worlds, MyPos: myPos}, p.E.Success
}

// GroupExcl removes the listed ranks from a group, preserving order.
func (p *Proc) GroupExcl(g *Group, ranksOut []int) (*Group, int) {
	if g == nil {
		return nil, p.E.ErrGroup
	}
	excl := make(map[int]bool, len(ranksOut))
	for _, r := range ranksOut {
		if r < 0 || r >= len(g.Ranks) {
			return nil, p.E.ErrRank
		}
		excl[r] = true
	}
	out := &Group{MyPos: -1}
	for i, w := range g.Ranks {
		if excl[i] {
			continue
		}
		if w == p.rank {
			out.MyPos = len(out.Ranks)
		}
		out.Ranks = append(out.Ranks, w)
	}
	return out, p.E.Success
}

// GroupTranslateRanks maps ranks in a to their ranks in b (Undefined when
// absent), mirroring MPI_Group_translate_ranks.
func (p *Proc) GroupTranslateRanks(a *Group, ranks []int, b *Group) ([]int, int) {
	if a == nil || b == nil {
		return nil, p.E.ErrGroup
	}
	out := make([]int, len(ranks))
	for i, r := range ranks {
		if r < 0 || r >= len(a.Ranks) {
			return nil, p.E.ErrRank
		}
		out[i] = p.K.Undefined
		for j, w := range b.Ranks {
			if w == a.Ranks[r] {
				out[i] = j
				break
			}
		}
	}
	return out, p.E.Success
}

// TypeContiguous mirrors MPI_Type_contiguous.
func (p *Proc) TypeContiguous(count int, inner *Type) (*Type, int) {
	if inner == nil {
		return nil, p.E.ErrType
	}
	t, err := types.Contiguous(count, inner.T)
	if err != nil {
		return nil, p.E.ErrArg
	}
	return &Type{T: t}, p.E.Success
}

// TypeVector mirrors MPI_Type_vector.
func (p *Proc) TypeVector(count, blocklen, stride int, inner *Type) (*Type, int) {
	if inner == nil {
		return nil, p.E.ErrType
	}
	t, err := types.Vector(count, blocklen, stride, inner.T)
	if err != nil {
		return nil, p.E.ErrArg
	}
	return &Type{T: t}, p.E.Success
}

// TypeIndexed mirrors MPI_Type_indexed.
func (p *Proc) TypeIndexed(blocklens, displs []int, inner *Type) (*Type, int) {
	if inner == nil {
		return nil, p.E.ErrType
	}
	t, err := types.Indexed(blocklens, displs, inner.T)
	if err != nil {
		return nil, p.E.ErrArg
	}
	return &Type{T: t}, p.E.Success
}

// TypeCreateStruct mirrors MPI_Type_create_struct. Member types must be
// committed first (the type engine's flattening requirement).
func (p *Proc) TypeCreateStruct(blocklens, displs []int, typs []*Type) (*Type, int) {
	members := make([]*types.Type, len(typs))
	for i, dt := range typs {
		if dt == nil {
			return nil, p.E.ErrType
		}
		if err := dt.T.Commit(); err != nil {
			return nil, p.E.ErrType
		}
		members[i] = dt.T
	}
	t, err := types.Struct(blocklens, displs, members)
	if err != nil {
		return nil, p.E.ErrArg
	}
	return &Type{T: t}, p.E.Success
}

// TypeCommit mirrors MPI_Type_commit.
func (p *Proc) TypeCommit(dt *Type) int {
	if dt == nil {
		return p.E.ErrType
	}
	if err := dt.T.Commit(); err != nil {
		return p.E.ErrType
	}
	return p.E.Success
}

// TypeFree releases a dynamic datatype; predefined types are rejected.
func (p *Proc) TypeFree(dt *Type) int {
	if dt == nil {
		return p.E.ErrType
	}
	if dt.Prim.Valid() {
		return p.E.ErrType
	}
	return p.E.Success
}

// TypeSize mirrors MPI_Type_size (committing lazily for queries).
func (p *Proc) TypeSize(dt *Type) (int, int) {
	if dt == nil {
		return 0, p.E.ErrType
	}
	if err := dt.T.Commit(); err != nil {
		return 0, p.E.ErrType
	}
	return dt.T.Size(), p.E.Success
}

// TypeExtent mirrors MPI_Type_get_extent.
func (p *Proc) TypeExtent(dt *Type) (int, int) {
	if dt == nil {
		return 0, p.E.ErrType
	}
	if err := dt.T.Commit(); err != nil {
		return 0, p.E.ErrType
	}
	return dt.T.Extent(), p.E.Success
}

// GetCount mirrors MPI_Get_count over a received byte count.
func (p *Proc) GetCount(countBytes uint64, dt *Type) (int, int) {
	if dt == nil {
		return 0, p.E.ErrType
	}
	if err := dt.T.Commit(); err != nil {
		return 0, p.E.ErrType
	}
	sz := dt.T.Size()
	if sz == 0 {
		return 0, p.E.ErrType
	}
	if countBytes%uint64(sz) != 0 {
		return p.K.Undefined, p.E.Success
	}
	return int(countBytes / uint64(sz)), p.E.Success
}

// OpCreate registers a user reduction operator by registry name (see
// ops.RegisterUser); named registration is what lets user ops survive a
// checkpoint/restart.
func (p *Proc) OpCreate(name string, commute bool) (*Op, int) {
	if _, _, err := ops.LookupUser(name); err != nil {
		return nil, p.E.ErrOp
	}
	return &Op{User: name, Commute: commute}, p.E.Success
}

// OpFree releases a user operator; predefined operators are rejected.
func (p *Proc) OpFree(o *Op) int {
	if o == nil {
		return p.E.ErrOp
	}
	if o.User == "" {
		return p.E.ErrOp
	}
	return p.E.Success
}
