package simnet

import (
	"math/rand"
	"sync"
	"time"
)

// congestionBucketNs quantizes virtual time for NIC congestion accounting.
const congestionBucketNs = 50_000 // 50us

// linkClock models the serialization of one NIC direction with bucketed
// byte accounting: a transfer departing at virtual time t is delayed by the
// serialization time of the bytes already booked in t's bucket. This is
// order-insensitive across virtual time — a rank running ahead can never
// push an earlier-virtual-time transfer into its own future (a ratcheting
// "next free" clock would, because reservation order is goroutine
// scheduling order, and the feedback inflates clock skew without bound).
type linkClock struct {
	mu      sync.Mutex
	buckets map[int64]int64 // bucket index -> bytes booked
}

// reserve books nbytes departing at the given time and returns the queueing
// delay behind bytes already booked in the same window.
func (l *linkClock) reserve(at Time, nbytes int, bw float64) time.Duration {
	if nbytes <= 0 {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.buckets == nil {
		l.buckets = make(map[int64]int64)
	}
	idx := int64(at) / congestionBucketNs
	queued := l.buckets[idx]
	l.buckets[idx] += int64(nbytes)
	// Opportunistic cleanup keeps long simulations from accumulating
	// dead buckets.
	if len(l.buckets) > 4096 {
		for k := range l.buckets {
			if k < idx-64 {
				delete(l.buckets, k)
			}
		}
	}
	return bytesTime(int(queued), bw)
}

// reset clears the reservation state (used between experiment repetitions).
func (l *linkClock) reset() {
	l.mu.Lock()
	l.buckets = nil
	l.mu.Unlock()
}

// nodeDegrade is an injected NIC degradation: from virtual time at
// onward, the node's NIC serializes at factor times its configured cost.
type nodeDegrade struct {
	at     Time
	factor float64
}

// Network computes virtual arrival times for messages on the simulated
// cluster. It is safe for concurrent use by all rank goroutines.
type Network struct {
	cfg     Config
	egress  []linkClock // one per node
	ingress []linkClock // one per node

	dmu  sync.RWMutex
	degr map[int]nodeDegrade

	jmu sync.Mutex
	rng *rand.Rand
}

// NewNetwork builds a Network for the given configuration. The configuration
// must Validate.
func NewNetwork(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Network{
		cfg:     cfg,
		egress:  make([]linkClock, cfg.Nodes),
		ingress: make([]linkClock, cfg.Nodes),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}, nil
}

// Config returns the configuration the network was built with.
func (n *Network) Config() Config { return n.cfg }

// DegradeNodeAfter injects a NIC degradation (internal/faults'
// nic-degrade): transfers crossing the node's NIC at/after virtual time
// at serialize at 1/factor of the configured rate. The trigger is pure
// virtual time, so degraded runs stay as deterministic as healthy ones.
// A second call for the same node replaces the first. Factors below 1
// and out-of-range nodes are ignored (a degradation can slow a NIC, not
// speed it up).
func (n *Network) DegradeNodeAfter(node int, factor float64, at Time) {
	if node < 0 || node >= n.cfg.Nodes || factor < 1 {
		return
	}
	n.dmu.Lock()
	defer n.dmu.Unlock()
	if n.degr == nil {
		n.degr = make(map[int]nodeDegrade)
	}
	n.degr[node] = nodeDegrade{at: at, factor: factor}
}

// nicBandwidth is the node's effective NIC rate for a transfer touching
// it at virtual time at.
func (n *Network) nicBandwidth(node int, at Time) float64 {
	n.dmu.RLock()
	d, ok := n.degr[node]
	n.dmu.RUnlock()
	if ok && at >= d.at {
		return n.cfg.NICBandwidth / d.factor
	}
	return n.cfg.NICBandwidth
}

// Transfer returns the virtual time at which a message of nbytes sent from
// src to dst at the given departure time is fully available at the receiver.
//
// Intra-node transfers use the shared-memory path: latency plus copy cost,
// with no NIC involvement. Inter-node transfers serialize on the source
// node's egress NIC, cross the wire (alpha + jitter), and serialize on the
// destination node's ingress NIC using cut-through timing, so an
// uncontended transfer costs alpha + nbytes/beta exactly once.
func (n *Network) Transfer(src, dst int, nbytes int, depart Time) Time {
	if nbytes < 0 {
		nbytes = 0
	}
	srcNode, dstNode := n.cfg.NodeOf(src), n.cfg.NodeOf(dst)
	if src == dst {
		// Self-send: a memcpy.
		return depart.Add(bytesTime(nbytes, n.cfg.IntraBandwidth))
	}
	if srcNode == dstNode {
		return depart.Add(n.cfg.IntraLatency + bytesTime(nbytes, n.cfg.IntraBandwidth))
	}
	ebw := n.nicBandwidth(srcNode, depart)
	tx := bytesTime(nbytes, ebw)
	eDelay := n.egress[srcNode].reserve(depart, nbytes, ebw)
	wire := n.cfg.InterLatency + n.jitter(n.cfg.InterLatency)
	afterWire := depart.Add(eDelay + tx + wire)
	ibw := n.nicBandwidth(dstNode, afterWire)
	iDelay := n.ingress[dstNode].reserve(afterWire, nbytes, ibw)
	return afterWire.Add(iDelay + bytesExtra(nbytes, ibw, n.cfg.InterBandwidth))
}

// Reset clears NIC reservation state so a fresh repetition starts from an
// idle network.
func (n *Network) Reset() {
	for i := range n.egress {
		n.egress[i].reset()
		n.ingress[i].reset()
	}
}

// jitter returns a random perturbation of up to JitterFrac*base.
func (n *Network) jitter(base time.Duration) time.Duration {
	if n.cfg.JitterFrac == 0 || base <= 0 {
		return 0
	}
	n.jmu.Lock()
	f := n.rng.Float64()
	n.jmu.Unlock()
	return time.Duration(f * n.cfg.JitterFrac * float64(base))
}

// bytesTime is the serialization time of nbytes at bw bytes/second.
func bytesTime(nbytes int, bw float64) time.Duration {
	return time.Duration(float64(nbytes) / bw * float64(time.Second))
}

// bytesExtra is the additional per-byte cost when the end-to-end bandwidth
// (bw2) is lower than the NIC serialization rate (bw1). With equal rates it
// is zero, keeping the uncontended cost alpha + n/beta.
func bytesExtra(nbytes int, bw1, bw2 float64) time.Duration {
	if bw2 >= bw1 {
		return 0
	}
	return bytesTime(nbytes, bw2) - bytesTime(nbytes, bw1)
}
