package simnet

import (
	"fmt"
	"time"
)

// Config describes the simulated cluster: its shape (nodes x ranks-per-node)
// and the parameters of the alpha-beta cost model.
//
// The defaults in Discovery10GbE mirror the paper's testbed: four compute
// nodes with 12 ranks each (48 MPI processes) connected by 10 GbE, with
// shared-memory communication inside a node.
type Config struct {
	// Nodes is the number of compute nodes.
	Nodes int
	// RanksPerNode is the number of MPI processes placed on each node.
	// Ranks are block-distributed: rank r lives on node r/RanksPerNode.
	RanksPerNode int

	// InterLatency is the one-way wire latency between two nodes (alpha).
	InterLatency time.Duration
	// IntraLatency is the latency of a shared-memory transfer inside a node.
	IntraLatency time.Duration

	// InterBandwidth is the per-byte cost channel between nodes, in bytes
	// per second (beta = 1/InterBandwidth).
	InterBandwidth float64
	// IntraBandwidth is the shared-memory copy bandwidth in bytes per second.
	IntraBandwidth float64

	// NICBandwidth is the serialization rate of a node's network interface in
	// bytes per second. All inter-node messages leaving (or entering) a node
	// share its NIC, which is how the model produces contention: 12 ranks
	// doing an alltoall saturate their node's NIC.
	NICBandwidth float64

	// SendOverhead is the sender-side per-message CPU cost (the "o" of LogP);
	// it is charged to the sender's clock by the MPI implementation.
	SendOverhead time.Duration
	// RecvOverhead is the receiver-side per-message CPU cost.
	RecvOverhead time.Duration

	// JitterFrac adds a uniform random perturbation of up to this fraction to
	// each message's wire latency. It models OS noise so that repeated runs
	// have the run-to-run variance the paper reports (Figure 5 error bars).
	// Zero disables jitter and makes contention-free traffic deterministic.
	JitterFrac float64

	// Seed seeds the deterministic jitter stream.
	Seed int64
}

// Discovery10GbE returns the paper's testbed: 4 nodes x 12 ranks, 10 GbE
// interconnect, CentOS-7-era shared memory path.
func Discovery10GbE() Config {
	return Config{
		Nodes:          4,
		RanksPerNode:   12,
		InterLatency:   25 * time.Microsecond, // TCP-over-10GbE small-message latency (CentOS 7)
		IntraLatency:   8 * time.Microsecond,  // TCP-loopback-era intra-node path
		InterBandwidth: 1.15e9,                // ~10 Gb/s payload rate
		IntraBandwidth: 2.5e9,
		NICBandwidth:   1.15e9,
		SendOverhead:   450 * time.Nanosecond,
		RecvOverhead:   350 * time.Nanosecond,
		JitterFrac:     0.02,
		Seed:           1,
	}
}

// SingleNode returns a one-node shared-memory-only configuration with n
// ranks, convenient for unit tests.
func SingleNode(n int) Config {
	c := Discovery10GbE()
	c.Nodes = 1
	c.RanksPerNode = n
	c.JitterFrac = 0
	return c
}

// Size returns the total number of ranks described by the configuration.
func (c Config) Size() int { return c.Nodes * c.RanksPerNode }

// NodeOf returns the node hosting the given rank.
func (c Config) NodeOf(rank int) int { return rank / c.RanksPerNode }

// Validate reports a descriptive error for nonsensical configurations.
func (c Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("simnet: Nodes must be positive, got %d", c.Nodes)
	case c.RanksPerNode <= 0:
		return fmt.Errorf("simnet: RanksPerNode must be positive, got %d", c.RanksPerNode)
	case c.InterBandwidth <= 0 || c.IntraBandwidth <= 0 || c.NICBandwidth <= 0:
		return fmt.Errorf("simnet: bandwidths must be positive")
	case c.InterLatency < 0 || c.IntraLatency < 0:
		return fmt.Errorf("simnet: latencies must be non-negative")
	case c.JitterFrac < 0 || c.JitterFrac > 1:
		return fmt.Errorf("simnet: JitterFrac must be in [0,1], got %g", c.JitterFrac)
	}
	return nil
}
