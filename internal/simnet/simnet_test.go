package simnet

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if got := c.Now(); got != 0 {
		t.Fatalf("fresh clock Now() = %v, want 0", got)
	}
	c.Advance(5 * time.Microsecond)
	if got := c.Now(); got != Time(5000) {
		t.Fatalf("Now() = %v, want 5000", got)
	}
	c.Advance(-time.Second) // negative ignored
	if got := c.Now(); got != Time(5000) {
		t.Fatalf("Now() after negative advance = %v, want 5000", got)
	}
}

func TestClockAdvanceTo(t *testing.T) {
	var c Clock
	c.Set(100)
	if got := c.AdvanceTo(50); got != 100 {
		t.Fatalf("AdvanceTo(50) = %v, want 100 (never go backwards)", got)
	}
	if got := c.AdvanceTo(200); got != 200 {
		t.Fatalf("AdvanceTo(200) = %v, want 200", got)
	}
}

func TestClockConcurrentAdvanceTo(t *testing.T) {
	var c Clock
	var wg sync.WaitGroup
	for i := 1; i <= 64; i++ {
		wg.Add(1)
		go func(v int64) {
			defer wg.Done()
			c.AdvanceTo(Time(v))
		}(int64(i))
	}
	wg.Wait()
	if got := c.Now(); got != 64 {
		t.Fatalf("after concurrent AdvanceTo, Now() = %v, want 64", got)
	}
}

func TestTimeHelpers(t *testing.T) {
	tt := Time(1500)
	if got := tt.Micros(); got != 1.5 {
		t.Fatalf("Micros() = %v, want 1.5", got)
	}
	if got := tt.Add(500 * time.Nanosecond); got != 2000 {
		t.Fatalf("Add = %v, want 2000", got)
	}
	if got := tt.Sub(500); got != time.Microsecond {
		t.Fatalf("Sub = %v, want 1us", got)
	}
}

func TestConfigValidate(t *testing.T) {
	good := Discovery10GbE()
	if err := good.Validate(); err != nil {
		t.Fatalf("Discovery10GbE should validate: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.RanksPerNode = -1 },
		func(c *Config) { c.InterBandwidth = 0 },
		func(c *Config) { c.IntraBandwidth = -5 },
		func(c *Config) { c.NICBandwidth = 0 },
		func(c *Config) { c.InterLatency = -time.Second },
		func(c *Config) { c.JitterFrac = 1.5 },
	}
	for i, mutate := range cases {
		c := Discovery10GbE()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config passed Validate", i)
		}
	}
}

func TestConfigPlacement(t *testing.T) {
	c := Discovery10GbE()
	if c.Size() != 48 {
		t.Fatalf("Size() = %d, want 48", c.Size())
	}
	if c.NodeOf(0) != 0 || c.NodeOf(11) != 0 || c.NodeOf(12) != 1 || c.NodeOf(47) != 3 {
		t.Fatalf("NodeOf block distribution wrong: %d %d %d %d",
			c.NodeOf(0), c.NodeOf(11), c.NodeOf(12), c.NodeOf(47))
	}
}

func newTestNet(t *testing.T, cfg Config) *Network {
	t.Helper()
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	return n
}

func TestTransferIntraNode(t *testing.T) {
	cfg := SingleNode(4)
	n := newTestNet(t, cfg)
	arrive := n.Transfer(0, 1, 0, 0)
	if arrive != Time(cfg.IntraLatency) {
		t.Fatalf("zero-byte intra-node transfer = %v, want latency %v", arrive, cfg.IntraLatency)
	}
	// Per-byte cost grows linearly.
	a1 := n.Transfer(0, 1, 1<<20, 0)
	a2 := n.Transfer(0, 1, 2<<20, 0)
	d1, d2 := a1.Sub(Time(cfg.IntraLatency)), a2.Sub(Time(cfg.IntraLatency))
	if d2 < 2*d1-time.Microsecond || d2 > 2*d1+time.Microsecond {
		t.Fatalf("intra-node cost not linear: 1MiB=%v 2MiB=%v", d1, d2)
	}
}

func TestTransferInterNodeUncontended(t *testing.T) {
	cfg := Discovery10GbE()
	cfg.JitterFrac = 0
	n := newTestNet(t, cfg)
	// rank 0 on node 0, rank 12 on node 1
	arrive := n.Transfer(0, 12, 0, 0)
	if arrive != Time(cfg.InterLatency) {
		t.Fatalf("zero-byte inter-node transfer = %v, want alpha %v", arrive, cfg.InterLatency)
	}
	n.Reset()
	sz := 1 << 20
	arrive = n.Transfer(0, 12, sz, 0)
	want := Time(cfg.InterLatency + bytesTime(sz, cfg.NICBandwidth))
	if arrive != want {
		t.Fatalf("1MiB inter-node transfer = %v, want %v", arrive, want)
	}
}

func TestTransferSelf(t *testing.T) {
	n := newTestNet(t, SingleNode(2))
	if got := n.Transfer(1, 1, 0, 42); got != 42 {
		t.Fatalf("zero-byte self transfer should be free, got %v", got)
	}
}

func TestTransferNICContention(t *testing.T) {
	cfg := Discovery10GbE()
	cfg.JitterFrac = 0
	n := newTestNet(t, cfg)
	sz := 1 << 20
	// Two ranks on node 0 send to two different nodes at the same instant:
	// the shared egress NIC must serialize them.
	a1 := n.Transfer(0, 12, sz, 0)
	a2 := n.Transfer(1, 24, sz, 0)
	tx := bytesTime(sz, cfg.NICBandwidth)
	if a2 < a1.Add(tx/2) {
		t.Fatalf("no NIC serialization visible: first=%v second=%v tx=%v", a1, a2, tx)
	}
	// After Reset the second sender sees an idle NIC again.
	n.Reset()
	if got := n.Transfer(1, 24, sz, 0); got != Time(cfg.InterLatency+tx) {
		t.Fatalf("after Reset, transfer = %v, want %v", got, Time(cfg.InterLatency+tx))
	}
}

func TestTransferJitterBounded(t *testing.T) {
	cfg := Discovery10GbE()
	cfg.JitterFrac = 0.10
	n := newTestNet(t, cfg)
	base := Time(cfg.InterLatency)
	for i := 0; i < 200; i++ {
		n.Reset()
		got := n.Transfer(0, 12, 0, 0)
		if got < base || got > base.Add(time.Duration(0.10*float64(cfg.InterLatency))) {
			t.Fatalf("jittered arrival %v outside [%v, base*1.1]", got, base)
		}
	}
}

func TestTransferDeterministicWithSeed(t *testing.T) {
	run := func() []Time {
		cfg := Discovery10GbE()
		cfg.Seed = 7
		n := newTestNet(t, cfg)
		var out []Time
		for i := 0; i < 32; i++ {
			out = append(out, n.Transfer(0, 12+i%12, 100, Time(i)))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("transfer %d differs across identical runs: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: arrival is never before departure + minimum latency, and is
// monotone in message size for a fixed path on a fresh network.
func TestTransferMonotoneInSize(t *testing.T) {
	cfg := Discovery10GbE()
	cfg.JitterFrac = 0
	f := func(szRaw uint16, extra uint16) bool {
		n, err := NewNetwork(cfg)
		if err != nil {
			return false
		}
		sz := int(szRaw)
		a1 := n.Transfer(0, 12, sz, 0)
		n.Reset()
		a2 := n.Transfer(0, 12, sz+int(extra), 0)
		return a2 >= a1 && a1 >= Time(cfg.InterLatency)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the clock max-rule is idempotent and commutative.
func TestClockAdvanceToProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		var c1, c2 Clock
		c1.AdvanceTo(Time(a))
		c1.AdvanceTo(Time(b))
		c2.AdvanceTo(Time(b))
		c2.AdvanceTo(Time(a))
		return c1.Now() == c2.Now() && c1.Now() >= Time(a) && c1.Now() >= Time(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTransferInterNode(b *testing.B) {
	cfg := Discovery10GbE()
	n, _ := NewNetwork(cfg)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.Transfer(0, 12, 1024, Time(i))
	}
}
