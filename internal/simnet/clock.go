// Package simnet models the virtual time and network fabric of an HPC
// cluster: per-rank virtual clocks, an alpha-beta message cost model, and
// per-node NIC serialization for contention.
//
// The reproduction runs MPI ranks as goroutines inside one OS process, so
// wall-clock time says little about what a 4-node 10 GbE cluster would do.
// Instead, every rank owns a virtual Clock. Message transfers advance the
// receiver's clock by max(receiver clock, arrival time), where the arrival
// time is computed from the topology-aware cost model in Network. This is a
// conservative parallel-discrete-event approximation: it is exact for
// contention-free traffic and near-deterministic under NIC contention.
//
// The cost-model defaults (Discovery10GbE) reproduce the paper's Section
// 5.1 testbed — 4 nodes x 12 ranks on the Discovery cluster's 10 GbE
// partition — and the jitter stream models the run-to-run variance behind
// Figure 5's error bars; the scenario engine seeds it deterministically
// per repetition.
package simnet

import (
	"sync/atomic"
	"time"
)

// Time is a point in virtual time, in nanoseconds since world start.
type Time int64

// Add returns the time d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts the time since world start to a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Micros reports t in microseconds as a float, the unit used by the paper's
// latency figures.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

// Clock is a per-rank virtual clock. The owning rank advances it; other
// goroutines (the checkpoint coordinator, the harness) may read it
// concurrently, so the value is accessed atomically.
type Clock struct {
	now atomic.Int64
}

// Now returns the current virtual time.
func (c *Clock) Now() Time { return Time(c.now.Load()) }

// Advance moves the clock forward by d. Negative durations are ignored so
// cost models can never move time backwards.
func (c *Clock) Advance(d time.Duration) Time {
	if d < 0 {
		d = 0
	}
	return Time(c.now.Add(int64(d)))
}

// AdvanceTo moves the clock to t if t is later than the current time and
// returns the resulting time. It implements the max(local, arrival) rule for
// message receipt.
func (c *Clock) AdvanceTo(t Time) Time {
	for {
		cur := c.now.Load()
		if int64(t) <= cur {
			return Time(cur)
		}
		if c.now.CompareAndSwap(cur, int64(t)) {
			return t
		}
	}
}

// Set forces the clock to t. Used on restart to restore a checkpointed
// rank's virtual time.
func (c *Clock) Set(t Time) { c.now.Store(int64(t)) }
