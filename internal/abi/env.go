package abi

import (
	"time"

	"repro/internal/ops"
	"repro/internal/simnet"
	"repro/internal/types"
)

// Env is the application's view of one MPI rank: the bound function table,
// the resolved predefined constants, and the rank's virtual clock. It is
// the analog of a compiled MPI binary: constants were resolved once at bind
// time ("compile time") and all calls go through the table it was linked
// against.
type Env struct {
	// T is the bound MPI function table (native, Mukautuva, or MANA).
	T FuncTable

	// Resolved object constants.
	CommWorld, CommSelf            Handle
	TypeByte, TypeInt32, TypeInt64 Handle
	TypeFloat64, TypeFloat64Int32  Handle
	OpSum, OpProd, OpMax, OpMin    Handle
	OpMaxLoc                       Handle

	// Resolved integer constants.
	AnySource, AnyTag, ProcNull int

	rank, size int
	clock      *simnet.Clock
}

// NewEnv binds a function table and clock into an application environment,
// resolving the constants an application would get from mpi.h.
func NewEnv(t FuncTable, clock *simnet.Clock) (*Env, error) {
	e := &Env{
		T:                t,
		CommWorld:        t.Lookup(SymCommWorld),
		CommSelf:         t.Lookup(SymCommSelf),
		TypeByte:         t.Lookup(SymForKind(types.KindByte)),
		TypeInt32:        t.Lookup(SymForKind(types.KindInt32)),
		TypeInt64:        t.Lookup(SymForKind(types.KindInt64)),
		TypeFloat64:      t.Lookup(SymForKind(types.KindFloat64)),
		TypeFloat64Int32: t.Lookup(SymForKind(types.KindFloat64Int32)),
		OpSum:            t.Lookup(SymForOp(ops.OpSum)),
		OpProd:           t.Lookup(SymForOp(ops.OpProd)),
		OpMax:            t.Lookup(SymForOp(ops.OpMax)),
		OpMin:            t.Lookup(SymForOp(ops.OpMin)),
		OpMaxLoc:         t.Lookup(SymForOp(ops.OpMaxLoc)),
		AnySource:        t.LookupInt(IntAnySource),
		AnyTag:           t.LookupInt(IntAnyTag),
		ProcNull:         t.LookupInt(IntProcNull),
		clock:            clock,
	}
	var err error
	if e.size, err = t.CommSize(e.CommWorld); err != nil {
		return nil, err
	}
	if e.rank, err = t.CommRank(e.CommWorld); err != nil {
		return nil, err
	}
	return e, nil
}

// Rebind repoints the environment's world communicator — ULFM in-place
// recovery's final step: after the application revokes the damaged
// communicator and shrinks it to the survivors, the shrunken handle
// becomes the new "world" and rank/size are re-resolved against it. The
// rest of the environment (constants, types, ops, clock) is unchanged:
// the binding survives the failure, which is the point of recovering in
// place instead of restarting the process.
func (e *Env) Rebind(world Handle) error {
	size, err := e.T.CommSize(world)
	if err != nil {
		return err
	}
	rank, err := e.T.CommRank(world)
	if err != nil {
		return err
	}
	e.CommWorld = world
	e.size, e.rank = size, rank
	return nil
}

// Rank returns the caller's rank in the world communicator.
func (e *Env) Rank() int { return e.rank }

// Size returns the world communicator size.
func (e *Env) Size() int { return e.size }

// Now returns the rank's current virtual time.
func (e *Env) Now() simnet.Time { return e.clock.Now() }

// Wtime returns the virtual time in seconds, like MPI_Wtime.
func (e *Env) Wtime() float64 { return float64(e.clock.Now()) / 1e9 }

// Compute advances virtual time by d, modeling local computation (or a
// sleep). It performs no real work.
func (e *Env) Compute(d time.Duration) { e.clock.Advance(d) }

// Clock exposes the underlying virtual clock (used by harnesses).
func (e *Env) Clock() *simnet.Clock { return e.clock }
