package abi

import (
	"fmt"

	"repro/internal/types"
)

// Status is the standard ABI's status object. Field order and widths are
// part of the ABI (applications may embed Status in their own structs and
// ship it across checkpoints), which is why both simulated implementations
// must convert their differently-laid-out native status records into this
// one at the translation boundary:
//
//   - simulated MPICH:   {count_lo, count_hi_and_cancelled, SOURCE, TAG, ERROR}
//   - simulated Open MPI: {SOURCE, TAG, ERROR, _ucount, _cancelled}
//   - standard ABI:       {Source, Tag, Error, CountBytes, Cancelled}
type Status struct {
	Source     int32  // rank of the sender (MPI_SOURCE)
	Tag        int32  // message tag (MPI_TAG)
	Error      int32  // error class (MPI_ERROR)
	CountBytes uint64 // received payload size in bytes
	Cancelled  bool
}

// GetCount returns the number of elements of the given predefined or
// committed datatype size received, or Undefined if the byte count is not a
// multiple of the type size (mirroring MPI_Get_count).
func (s *Status) GetCount(typeSize int) int {
	if typeSize <= 0 {
		return Undefined
	}
	if s.CountBytes%uint64(typeSize) != 0 {
		return Undefined
	}
	return int(s.CountBytes / uint64(typeSize))
}

// GetCountKind is GetCount for a primitive kind.
func (s *Status) GetCountKind(k types.Kind) int { return s.GetCount(k.Size()) }

// String renders the status for diagnostics.
func (s *Status) String() string {
	return fmt.Sprintf("Status{src=%d tag=%d err=%d bytes=%d cancelled=%v}",
		s.Source, s.Tag, s.Error, s.CountBytes, s.Cancelled)
}
