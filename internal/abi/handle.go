// Package abi defines the proposed standard MPI ABI that the paper's
// three-legged stool revolves around: the opaque handle representation,
// the values of predefined constants, the status object layout, error
// classes, and the function table every layer implements.
//
// It is the analog of the MPI ABI working group's standardized mpi.h: an
// application binds to this package once ("compiled once") and can then run
// over any implementation stack — a native binding, the Mukautuva shim, or
// the MANA checkpointing wrapper — without change ("runs everywhere").
//
// In the README's layer diagram this package is the surface the
// applications row compiles against and the top edge of the
// bindings-and-shims row: the standardized ABI of Section 4.1.
package abi

import "fmt"

// Handle is the standard ABI's opaque object handle: a 64-bit integer with
// the object class in the top byte and a payload below. Predefined handles
// have payloads below PredefinedLimit; handles minted at runtime use larger
// payloads. Applications must treat handles as opaque.
//
// This mirrors the MPI ABI proposal's design: handles are pointer-sized
// integers whose predefined values are fixed small constants, so they can
// be baked into a binary at compile time and still be meaningful to any
// compliant implementation. The proposal's trick of encoding a predefined
// datatype's size inside its handle bits is reproduced (see TypeHandle).
type Handle uint64

// Class is the object class carried in a handle's top byte.
type Class uint8

// Object classes.
const (
	ClassNone Class = iota
	ClassComm
	ClassGroup
	ClassType
	ClassOp
	ClassRequest
)

var classNames = [...]string{
	ClassNone: "none", ClassComm: "comm", ClassGroup: "group",
	ClassType: "type", ClassOp: "op", ClassRequest: "request",
}

// String names the class.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

const (
	classShift = 56
	payloadMax = (uint64(1) << classShift) - 1

	// PredefinedLimit separates predefined handle payloads (below) from
	// runtime-allocated ones (at or above).
	PredefinedLimit = 0x10000
)

// MakeHandle assembles a handle from class and payload.
func MakeHandle(c Class, payload uint64) Handle {
	if payload > payloadMax {
		panic(fmt.Sprintf("abi: handle payload %#x overflows", payload))
	}
	return Handle(uint64(c)<<classShift | payload)
}

// HandleClass extracts the object class.
func (h Handle) HandleClass() Class { return Class(h >> classShift) }

// Payload extracts the payload bits.
func (h Handle) Payload() uint64 { return uint64(h) & payloadMax }

// Predefined reports whether the handle is one of the ABI's fixed
// compile-time constants.
func (h Handle) Predefined() bool { return h.Payload() < PredefinedLimit }

// IsNull reports whether the handle is the null handle of its class
// (payload zero).
func (h Handle) IsNull() bool { return h.Payload() == 0 }

// String renders the handle for diagnostics.
func (h Handle) String() string {
	return fmt.Sprintf("%v:%#x", h.HandleClass(), h.Payload())
}

// Predefined handles. Null handles are payload 0 of their class.
var (
	HandleNull  = Handle(0)
	CommNull    = MakeHandle(ClassComm, 0)
	CommWorld   = MakeHandle(ClassComm, 1)
	CommSelf    = MakeHandle(ClassComm, 2)
	GroupNull   = MakeHandle(ClassGroup, 0)
	GroupEmpty  = MakeHandle(ClassGroup, 1)
	TypeNull    = MakeHandle(ClassType, 0)
	OpNull      = MakeHandle(ClassOp, 0)
	RequestNull = MakeHandle(ClassRequest, 0)
)
