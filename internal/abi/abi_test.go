package abi

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/ops"
	"repro/internal/types"
)

func TestHandleEncoding(t *testing.T) {
	h := MakeHandle(ClassComm, 0x12345)
	if h.HandleClass() != ClassComm {
		t.Fatalf("class = %v, want comm", h.HandleClass())
	}
	if h.Payload() != 0x12345 {
		t.Fatalf("payload = %#x, want 0x12345", h.Payload())
	}
	if h.Predefined() {
		t.Fatal("0x12345 payload should not be predefined")
	}
	if h.IsNull() {
		t.Fatal("non-zero payload is not null")
	}
}

func TestHandlePredefinedValues(t *testing.T) {
	if !CommWorld.Predefined() || CommWorld.HandleClass() != ClassComm {
		t.Fatalf("CommWorld malformed: %v", CommWorld)
	}
	if !CommNull.IsNull() || !GroupNull.IsNull() || !RequestNull.IsNull() {
		t.Fatal("null handles must have payload 0")
	}
	if CommWorld == CommSelf || CommWorld == CommNull {
		t.Fatal("predefined comm handles must be distinct")
	}
	// Handles are class-disambiguated even with equal payloads.
	if MakeHandle(ClassComm, 1) == MakeHandle(ClassGroup, 1) {
		t.Fatal("class bits missing from handle value")
	}
}

func TestHandlePayloadOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized payload did not panic")
		}
	}()
	MakeHandle(ClassComm, 1<<60)
}

func TestTypeHandleEncodesKindAndSize(t *testing.T) {
	for _, k := range types.Kinds() {
		h := TypeHandle(k)
		if h.HandleClass() != ClassType || !h.Predefined() {
			t.Fatalf("TypeHandle(%v) = %v malformed", k, h)
		}
		back, ok := TypeKind(h)
		if !ok || back != k {
			t.Fatalf("TypeKind(TypeHandle(%v)) = %v,%v", k, back, ok)
		}
	}
	// Distinctness across kinds.
	seen := map[Handle]types.Kind{}
	for _, k := range types.Kinds() {
		h := TypeHandle(k)
		if prev, dup := seen[h]; dup {
			t.Fatalf("TypeHandle collision: %v and %v -> %v", prev, k, h)
		}
		seen[h] = k
	}
	if _, ok := TypeKind(CommWorld); ok {
		t.Fatal("TypeKind accepted a comm handle")
	}
	if _, ok := TypeKind(TypeNull); ok {
		t.Fatal("TypeKind accepted TypeNull")
	}
}

func TestOpHandles(t *testing.T) {
	for _, op := range ops.Ops() {
		h := OpHandle(op)
		back, ok := OpOf(h)
		if !ok || back != op {
			t.Fatalf("OpOf(OpHandle(%v)) = %v,%v", op, back, ok)
		}
	}
	if _, ok := OpOf(OpNull); ok {
		t.Fatal("OpOf accepted OpNull")
	}
	if _, ok := OpOf(TypeFloat64); ok {
		t.Fatal("OpOf accepted a type handle")
	}
}

func TestSymbolRoundTrip(t *testing.T) {
	for _, k := range types.Kinds() {
		s := SymForKind(k)
		back, ok := KindForSym(s)
		if !ok || back != k {
			t.Fatalf("KindForSym(SymForKind(%v)) = %v,%v", k, back, ok)
		}
		if StdLookup(s) != TypeHandle(k) {
			t.Fatalf("StdLookup(%v) != TypeHandle(%v)", s, k)
		}
	}
	for _, op := range ops.Ops() {
		s := SymForOp(op)
		back, ok := OpForSym(s)
		if !ok || back != op {
			t.Fatalf("OpForSym(SymForOp(%v)) = %v,%v", op, back, ok)
		}
		if StdLookup(s) != OpHandle(op) {
			t.Fatalf("StdLookup(%v) != OpHandle(%v)", s, op)
		}
	}
	// Type and op symbol ranges must not overlap.
	for _, k := range types.Kinds() {
		if _, ok := OpForSym(SymForKind(k)); ok {
			t.Fatalf("symbol ranges overlap at kind %v", k)
		}
	}
}

func TestStdLookupFixedSymbols(t *testing.T) {
	cases := []struct {
		s    Sym
		want Handle
	}{
		{SymCommWorld, CommWorld}, {SymCommSelf, CommSelf}, {SymCommNull, CommNull},
		{SymGroupNull, GroupNull}, {SymGroupEmpty, GroupEmpty},
		{SymTypeNull, TypeNull}, {SymOpNull, OpNull}, {SymRequestNull, RequestNull},
		{SymInvalid, HandleNull},
	}
	for _, c := range cases {
		if got := StdLookup(c.s); got != c.want {
			t.Errorf("StdLookup(%d) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestStdLookupInt(t *testing.T) {
	if StdLookupInt(IntAnySource) != AnySource || StdLookupInt(IntProcNull) != ProcNull ||
		StdLookupInt(IntTagUB) != TagUB || StdLookupInt(IntUndefined) != Undefined {
		t.Fatal("StdLookupInt wrong")
	}
	if StdLookupInt(IntSym(250)) != Undefined {
		t.Fatal("unknown IntSym should map to Undefined")
	}
}

func TestStatusGetCount(t *testing.T) {
	s := &Status{CountBytes: 24}
	if got := s.GetCount(8); got != 3 {
		t.Fatalf("GetCount(8) = %d, want 3", got)
	}
	if got := s.GetCount(7); got != Undefined {
		t.Fatalf("GetCount(7) = %d, want Undefined", got)
	}
	if got := s.GetCount(0); got != Undefined {
		t.Fatalf("GetCount(0) = %d, want Undefined", got)
	}
	if got := s.GetCountKind(types.KindFloat64); got != 3 {
		t.Fatalf("GetCountKind = %d, want 3", got)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestErrorClassOf(t *testing.T) {
	if ClassOf(nil) != ErrSuccess {
		t.Fatal("nil must be MPI_SUCCESS")
	}
	e := Errorf(ErrComm, "mpich", "invalid communicator %d", 7)
	if ClassOf(e) != ErrComm {
		t.Fatalf("ClassOf = %v, want ErrComm", ClassOf(e))
	}
	wrapped := fmt.Errorf("outer: %w", e)
	if ClassOf(wrapped) != ErrComm {
		t.Fatal("ClassOf must unwrap")
	}
	if ClassOf(errors.New("plain")) != ErrOther {
		t.Fatal("plain errors map to ErrOther")
	}
	if e.Error() == "" || ErrTruncate.String() != "MPI_ERR_TRUNCATE" {
		t.Fatal("error rendering broken")
	}
}

func TestConvertRoundTrips(t *testing.T) {
	f := func(vs []float64) bool {
		b := Float64Bytes(vs)
		out := Float64sOf(b)
		if len(out) != len(vs) {
			return false
		}
		for i := range vs {
			// NaN-safe bitwise comparison via re-encoding.
			if Float64Bytes(vs[i : i+1])[0] != Float64Bytes(out[i : i+1])[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	g := func(vs []int64) bool {
		out := Int64sOf(Int64Bytes(vs))
		for i := range vs {
			if out[i] != vs[i] {
				return false
			}
		}
		return len(out) == len(vs)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
	h := func(vs []int32) bool {
		out := Int32sOf(Int32Bytes(vs))
		for i := range vs {
			if out[i] != vs[i] {
				return false
			}
		}
		return len(out) == len(vs)
	}
	if err := quick.Check(h, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHandleStringDiagnostics(t *testing.T) {
	if CommWorld.String() == "" || Class(99).String() == "" {
		t.Fatal("diagnostics broken")
	}
}
