package abi

import (
	"fmt"

	"repro/internal/ops"
	"repro/internal/types"
)

// Sym names a predefined object constant that an application resolves at
// bind time. This models compile-time constant substitution from mpi.h:
// binding an application to a native MPICH table yields MPICH's handle
// values, binding to a standard-ABI table (Mukautuva or MANA) yields the
// fixed values in this package. Application code never hardcodes handle
// bit patterns.
type Sym uint16

// Object constant symbols.
const (
	SymInvalid Sym = iota
	SymCommWorld
	SymCommSelf
	SymCommNull
	SymGroupNull
	SymGroupEmpty
	SymTypeNull
	SymOpNull
	SymRequestNull
	symTypeBase // + types.Kind
)

const symOpBase = symTypeBase + Sym(types.KindFloat64Int32) + 16 // + ops.Op

// SymForKind returns the symbol of a primitive datatype.
func SymForKind(k types.Kind) Sym {
	if !k.Valid() {
		panic(fmt.Sprintf("abi: no symbol for kind %v", k))
	}
	return symTypeBase + Sym(k)
}

// SymForOp returns the symbol of a predefined reduction operator.
func SymForOp(op ops.Op) Sym {
	if !op.Valid() {
		panic(fmt.Sprintf("abi: no symbol for op %v", op))
	}
	return symOpBase + Sym(op)
}

// KindForSym inverts SymForKind.
func KindForSym(s Sym) (types.Kind, bool) {
	if s < symTypeBase || s >= symOpBase {
		return types.KindInvalid, false
	}
	k := types.Kind(s - symTypeBase)
	return k, k.Valid()
}

// OpForSym inverts SymForOp.
func OpForSym(s Sym) (ops.Op, bool) {
	if s < symOpBase {
		return ops.OpNull, false
	}
	op := ops.Op(s - symOpBase)
	return op, op.Valid()
}

// IntSym names a predefined integer constant (compare Sym for handles).
type IntSym uint8

// Integer constant symbols.
const (
	IntAnySource IntSym = iota
	IntAnyTag
	IntProcNull
	IntRoot
	IntUndefined
	IntTagUB
)

// StdLookup resolves a symbol to its standard-ABI handle value. Standard
// ABI tables (Mukautuva, MANA) use this directly.
func StdLookup(s Sym) Handle {
	switch s {
	case SymCommWorld:
		return CommWorld
	case SymCommSelf:
		return CommSelf
	case SymCommNull:
		return CommNull
	case SymGroupNull:
		return GroupNull
	case SymGroupEmpty:
		return GroupEmpty
	case SymTypeNull:
		return TypeNull
	case SymOpNull:
		return OpNull
	case SymRequestNull:
		return RequestNull
	}
	if k, ok := KindForSym(s); ok {
		return TypeHandle(k)
	}
	if op, ok := OpForSym(s); ok {
		return OpHandle(op)
	}
	return HandleNull
}

// StdLookupInt resolves an integer symbol to its standard-ABI value.
func StdLookupInt(s IntSym) int {
	switch s {
	case IntAnySource:
		return AnySource
	case IntAnyTag:
		return AnyTag
	case IntProcNull:
		return ProcNull
	case IntRoot:
		return Root
	case IntUndefined:
		return Undefined
	case IntTagUB:
		return TagUB
	}
	return Undefined
}

// FuncTable is the MPI function table — the ABI's callable surface. Every
// layer of the paper's stack implements it:
//
//	native bindings  (internal/mpich.Bind, internal/openmpi.Bind)
//	the ABI shim     (internal/mukautuva.Shim)
//	the checkpointer (internal/mana.Wrapper)
//
// so layers stack by simple interface wrapping, the Go analog of function
// interposition via LD_PRELOAD.
//
// Buffers are byte slices interpreted through datatype handles, counts are
// element counts, and non-nil *Status out-parameters are filled on receive
// completion, mirroring the C API shape.
type FuncTable interface {
	// ImplName identifies the bottom MPI library (e.g. "mpich",
	// "openmpi"), like MPI_Get_library_version.
	ImplName() string

	// Lookup resolves predefined object constants at bind time; LookupInt
	// resolves integer constants (wildcards, PROC_NULL, ...).
	Lookup(Sym) Handle
	LookupInt(IntSym) int

	// Point-to-point.
	Send(buf []byte, count int, dtype Handle, dest, tag int, comm Handle) error
	Recv(buf []byte, count int, dtype Handle, source, tag int, comm Handle, status *Status) error
	Isend(buf []byte, count int, dtype Handle, dest, tag int, comm Handle) (Handle, error)
	Irecv(buf []byte, count int, dtype Handle, source, tag int, comm Handle) (Handle, error)
	Wait(req Handle, status *Status) error
	Test(req Handle, status *Status) (bool, error)
	Waitall(reqs []Handle, statuses []Status) error
	Sendrecv(sendbuf []byte, scount int, stype Handle, dest, stag int,
		recvbuf []byte, rcount int, rtype Handle, source, rtag int,
		comm Handle, status *Status) error
	// Probe blocks until a matching message is available without receiving
	// it; Iprobe polls. The status carries the pending message's source,
	// tag and byte count (MANA's drain protocol depends on these).
	Probe(source, tag int, comm Handle, status *Status) error
	Iprobe(source, tag int, comm Handle, status *Status) (bool, error)

	// Collectives.
	Barrier(comm Handle) error
	Bcast(buf []byte, count int, dtype Handle, root int, comm Handle) error
	Reduce(sendbuf, recvbuf []byte, count int, dtype, op Handle, root int, comm Handle) error
	Allreduce(sendbuf, recvbuf []byte, count int, dtype, op Handle, comm Handle) error
	Gather(sendbuf []byte, scount int, stype Handle,
		recvbuf []byte, rcount int, rtype Handle, root int, comm Handle) error
	Allgather(sendbuf []byte, scount int, stype Handle,
		recvbuf []byte, rcount int, rtype Handle, comm Handle) error
	Scatter(sendbuf []byte, scount int, stype Handle,
		recvbuf []byte, rcount int, rtype Handle, root int, comm Handle) error
	Alltoall(sendbuf []byte, scount int, stype Handle,
		recvbuf []byte, rcount int, rtype Handle, comm Handle) error

	// Communicator management.
	CommSize(comm Handle) (int, error)
	CommRank(comm Handle) (int, error)
	CommDup(comm Handle) (Handle, error)
	CommSplit(comm Handle, color, key int) (Handle, error)
	CommCreate(comm, group Handle) (Handle, error)
	CommGroup(comm Handle) (Handle, error)
	CommFree(comm Handle) error

	// Groups.
	GroupSize(group Handle) (int, error)
	GroupRank(group Handle) (int, error)
	GroupIncl(group Handle, ranks []int) (Handle, error)
	GroupExcl(group Handle, ranks []int) (Handle, error)
	GroupTranslateRanks(g1 Handle, ranks []int, g2 Handle) ([]int, error)
	GroupFree(group Handle) error

	// Derived datatypes.
	TypeContiguous(count int, inner Handle) (Handle, error)
	TypeVector(count, blocklen, stride int, inner Handle) (Handle, error)
	TypeIndexed(blocklens, displs []int, inner Handle) (Handle, error)
	TypeCreateStruct(blocklens, displs []int, typs []Handle) (Handle, error)
	TypeCommit(dtype Handle) error
	TypeFree(dtype Handle) error
	TypeSize(dtype Handle) (int, error)
	TypeExtent(dtype Handle) (int, error)
	GetCount(status *Status, dtype Handle) (int, error)

	// ULFM fault tolerance (the MPIX_Comm_* extensions). CommRevoke
	// poisons a communicator so every member's subsequent traffic on it
	// raises ErrRevoked; CommShrink derives a survivors-only
	// communicator (it works on revoked communicators); CommAgree is the
	// fault-tolerant agreement (bitwise AND over living participants'
	// flags, acknowledging failures as it goes); CommFailureAck /
	// CommFailureGetAcked manage the acknowledged-failure set that
	// re-arms wildcard receives. Error codes surface in each
	// implementation's own MPIX numbering below the translation layers —
	// the newest, least-standardized corner of the ABI.
	CommRevoke(comm Handle) error
	CommShrink(comm Handle) (Handle, error)
	CommAgree(comm Handle, flag uint64) (uint64, error)
	CommFailureAck(comm Handle) error
	CommFailureGetAcked(comm Handle) (Handle, error)

	// Reduction operators. User operators are registered by name in
	// internal/ops so they survive checkpoint/restart.
	OpCreate(name string, commute bool) (Handle, error)
	OpFree(op Handle) error

	// Abort terminates the job with the given error code.
	Abort(comm Handle, code int) error
}
