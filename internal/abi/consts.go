package abi

import (
	"fmt"
	"math/bits"

	"repro/internal/ops"
	"repro/internal/types"
)

// Standard ABI integer constants. The values deliberately differ from both
// simulated implementations' native values in at least one direction
// (MPICH uses ANY_SOURCE=-2, the simulated Open MPI uses PROC_NULL=-3), so
// the translation layers cannot get away with passing integers through.
const (
	AnySource = -1      // wildcard source rank
	AnyTag    = -1      // wildcard tag
	ProcNull  = -2      // null peer: operations complete immediately
	Root      = -4      // special root value for intercommunicators
	Undefined = -32766  // MPI_UNDEFINED
	TagUB     = 1 << 22 // largest valid tag
)

// TypeHandle returns the predefined standard handle for a primitive kind.
// Following the ABI working group's encoding, the handle embeds the
// datatype's size: payload = kind<<8 | log2ceil(size), so a compliant
// library can answer MPI_Type_size for predefined types without a lookup.
func TypeHandle(k types.Kind) Handle {
	if !k.Valid() {
		panic(fmt.Sprintf("abi: no type handle for kind %v", k))
	}
	sz := k.Size()
	log2 := uint64(bits.Len(uint(sz - 1)))
	return MakeHandle(ClassType, uint64(k)<<8|log2)
}

// TypeKind recovers the primitive kind from a predefined type handle.
func TypeKind(h Handle) (types.Kind, bool) {
	if h.HandleClass() != ClassType || !h.Predefined() || h.IsNull() {
		return types.KindInvalid, false
	}
	k := types.Kind(h.Payload() >> 8)
	if !k.Valid() {
		return types.KindInvalid, false
	}
	return k, true
}

// OpHandle returns the predefined standard handle for a reduction operator.
func OpHandle(op ops.Op) Handle {
	if !op.Valid() {
		panic(fmt.Sprintf("abi: no op handle for %v", op))
	}
	return MakeHandle(ClassOp, uint64(op))
}

// OpOf recovers the operator from a predefined op handle.
func OpOf(h Handle) (ops.Op, bool) {
	if h.HandleClass() != ClassOp || !h.Predefined() || h.IsNull() {
		return ops.OpNull, false
	}
	op := ops.Op(h.Payload())
	if !op.Valid() {
		return ops.OpNull, false
	}
	return op, true
}

// Predefined datatype handles, one per primitive kind.
var (
	TypeByte         = TypeHandle(types.KindByte)
	TypeInt8         = TypeHandle(types.KindInt8)
	TypeUint8        = TypeHandle(types.KindUint8)
	TypeInt16        = TypeHandle(types.KindInt16)
	TypeUint16       = TypeHandle(types.KindUint16)
	TypeInt32        = TypeHandle(types.KindInt32)
	TypeUint32       = TypeHandle(types.KindUint32)
	TypeInt64        = TypeHandle(types.KindInt64)
	TypeUint64       = TypeHandle(types.KindUint64)
	TypeFloat32      = TypeHandle(types.KindFloat32)
	TypeFloat64      = TypeHandle(types.KindFloat64)
	TypeComplex64    = TypeHandle(types.KindComplex64)
	TypeComplex128   = TypeHandle(types.KindComplex128)
	TypeBool         = TypeHandle(types.KindBool)
	TypeFloat32Int32 = TypeHandle(types.KindFloat32Int32)
	TypeFloat64Int32 = TypeHandle(types.KindFloat64Int32)
	TypeInt32Int32   = TypeHandle(types.KindInt32Int32)
)

// Predefined operator handles.
var (
	OpSum    = OpHandle(ops.OpSum)
	OpProd   = OpHandle(ops.OpProd)
	OpMax    = OpHandle(ops.OpMax)
	OpMin    = OpHandle(ops.OpMin)
	OpLAnd   = OpHandle(ops.OpLAnd)
	OpLOr    = OpHandle(ops.OpLOr)
	OpLXor   = OpHandle(ops.OpLXor)
	OpBAnd   = OpHandle(ops.OpBAnd)
	OpBOr    = OpHandle(ops.OpBOr)
	OpBXor   = OpHandle(ops.OpBXor)
	OpMaxLoc = OpHandle(ops.OpMaxLoc)
	OpMinLoc = OpHandle(ops.OpMinLoc)
)
