package abi

import (
	"errors"
	"fmt"
)

// ErrClass is a standard ABI error class. Implementations have their own
// error code spaces; translation layers map native codes into these
// classes, as MPI_Error_class does.
type ErrClass int32

// Standard error classes (a practical subset of MPI's).
const (
	ErrSuccess ErrClass = iota
	ErrBuffer
	ErrCount
	ErrType
	ErrTag
	ErrComm
	ErrRank
	ErrRequest
	ErrRoot
	ErrGroup
	ErrOp
	ErrArg
	ErrTruncate
	ErrUnsupported
	ErrPending
	ErrIntern
	ErrOther
	// ErrProcFailed and ErrRevoked are the ULFM fault-tolerance classes
	// (MPIX_ERR_PROC_FAILED / MPIX_ERR_REVOKED). They are the newest and
	// least-settled corner of the error space: each implementation
	// numbers them differently in its native table (they postdate the
	// classic MPI_ERR_* block), so the standardized values here are what
	// lets an application's failure handling survive an implementation
	// swap — the paper's fault-tolerance argument in one enum.
	ErrProcFailed
	ErrRevoked
	errClassMax
)

var errClassNames = [...]string{
	ErrSuccess: "MPI_SUCCESS", ErrBuffer: "MPI_ERR_BUFFER", ErrCount: "MPI_ERR_COUNT",
	ErrType: "MPI_ERR_TYPE", ErrTag: "MPI_ERR_TAG", ErrComm: "MPI_ERR_COMM",
	ErrRank: "MPI_ERR_RANK", ErrRequest: "MPI_ERR_REQUEST", ErrRoot: "MPI_ERR_ROOT",
	ErrGroup: "MPI_ERR_GROUP", ErrOp: "MPI_ERR_OP", ErrArg: "MPI_ERR_ARG",
	ErrTruncate: "MPI_ERR_TRUNCATE", ErrUnsupported: "MPI_ERR_UNSUPPORTED_OPERATION",
	ErrPending: "MPI_ERR_PENDING", ErrIntern: "MPI_ERR_INTERN", ErrOther: "MPI_ERR_OTHER",
	ErrProcFailed: "MPI_ERR_PROC_FAILED", ErrRevoked: "MPI_ERR_REVOKED",
}

// String names the error class.
func (c ErrClass) String() string {
	if c >= 0 && c < errClassMax {
		return errClassNames[c]
	}
	return fmt.Sprintf("ErrClass(%d)", int32(c))
}

// Error is a standard ABI error value: a class plus context. Impl records
// which library layer produced it, so cross-layer failures stay
// attributable ("openmpi: invalid communicator" vs "mukautuva: ...").
type Error struct {
	Class ErrClass
	Impl  string
	Msg   string
}

// Errorf builds an *Error with a formatted message.
func Errorf(class ErrClass, impl, format string, args ...any) *Error {
	return &Error{Class: class, Impl: impl, Msg: fmt.Sprintf(format, args...)}
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Impl != "" {
		return fmt.Sprintf("%s: %s (%v)", e.Impl, e.Msg, e.Class)
	}
	return fmt.Sprintf("%s (%v)", e.Msg, e.Class)
}

// ClassOf extracts the standard error class from any error. Non-ABI errors
// map to ErrOther; nil maps to ErrSuccess.
func ClassOf(err error) ErrClass {
	if err == nil {
		return ErrSuccess
	}
	var ae *Error
	if errors.As(err, &ae) {
		return ae.Class
	}
	return ErrOther
}
