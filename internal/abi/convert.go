package abi

import (
	"encoding/binary"
	"math"
)

// Typed buffer helpers. MPI's C interface traffics in void* buffers; the Go
// analog is []byte plus a datatype handle. These helpers convert between Go
// slices and wire buffers so applications and tests stay readable. All
// encodings are little-endian, the ABI's declared byte order.

// PutFloat64s encodes vs into dst, which must hold 8*len(vs) bytes.
func PutFloat64s(dst []byte, vs []float64) {
	for i, v := range vs {
		binary.LittleEndian.PutUint64(dst[i*8:], math.Float64bits(v))
	}
}

// GetFloat64s decodes len(out) float64s from src into out.
func GetFloat64s(src []byte, out []float64) {
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[i*8:]))
	}
}

// Float64Bytes allocates and encodes a fresh buffer for vs.
func Float64Bytes(vs []float64) []byte {
	b := make([]byte, 8*len(vs))
	PutFloat64s(b, vs)
	return b
}

// Float64sOf decodes the whole buffer as float64s.
func Float64sOf(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	GetFloat64s(b, out)
	return out
}

// PutInt64s encodes vs into dst, which must hold 8*len(vs) bytes.
func PutInt64s(dst []byte, vs []int64) {
	for i, v := range vs {
		binary.LittleEndian.PutUint64(dst[i*8:], uint64(v))
	}
}

// GetInt64s decodes len(out) int64s from src into out.
func GetInt64s(src []byte, out []int64) {
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(src[i*8:]))
	}
}

// Int64Bytes allocates and encodes a fresh buffer for vs.
func Int64Bytes(vs []int64) []byte {
	b := make([]byte, 8*len(vs))
	PutInt64s(b, vs)
	return b
}

// Int64sOf decodes the whole buffer as int64s.
func Int64sOf(b []byte) []int64 {
	out := make([]int64, len(b)/8)
	GetInt64s(b, out)
	return out
}

// PutInt32s encodes vs into dst, which must hold 4*len(vs) bytes.
func PutInt32s(dst []byte, vs []int32) {
	for i, v := range vs {
		binary.LittleEndian.PutUint32(dst[i*4:], uint32(v))
	}
}

// GetInt32s decodes len(out) int32s from src into out.
func GetInt32s(src []byte, out []int32) {
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(src[i*4:]))
	}
}

// Int32Bytes allocates and encodes a fresh buffer for vs.
func Int32Bytes(vs []int32) []byte {
	b := make([]byte, 4*len(vs))
	PutInt32s(b, vs)
	return b
}

// Int32sOf decodes the whole buffer as int32s.
func Int32sOf(b []byte) []int32 {
	out := make([]int32, len(b)/4)
	GetInt32s(b, out)
	return out
}
