package mana

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/abi"
)

// Blob is the wrapper's serialized upper-half MPI state: everything needed
// to rebind virtual ids against a fresh lower half and to replay drained
// in-flight messages. It contains no implementation handles — only
// standard-ABI values and recipes — which is what makes a Mukautuva-backed
// image restartable under a different MPI implementation.
type Blob struct {
	NextVid  uint64
	Log      []Event
	Sent     map[abi.Handle]map[int]uint64
	Recvd    map[abi.Handle]map[int]uint64
	Buffered map[abi.Handle][]Drained
}

// wireCounts is one rank's published send counters for one communicator
// (keyed by gid in the exchange payload).
type wireCounts struct {
	MyRank int // the sender's rank within that communicator
	SentTo map[int]uint64
}

// PreCheckpoint implements the dmtcp.Plugin drain phase: MANA's
// counter-exchange algorithm. Every rank publishes, per communicator, how
// many point-to-point messages it has sent to each peer; each receiver
// compares against its receive counters and pulls the difference out of
// the lower half into upper-half buffers. After PreCheckpoint the network
// is empty, so the lower half can be discarded wholesale — the property
// the split-process checkpoint depends on.
func (w *Wrapper) PreCheckpoint() ([]byte, error) {
	if n := len(w.reqs); n != 0 {
		return nil, abi.Errorf(abi.ErrPending, "mana",
			"checkpoint at unsafe point: %d outstanding requests", n)
	}
	// Publish send counters keyed by communicator gid.
	pub := make(map[uint64]wireCounts)
	for vid, counts := range w.sent {
		info := w.comms[vid]
		if info == nil {
			continue
		}
		pub[info.gid] = wireCounts{MyRank: info.myRank, SentTo: counts}
	}
	payload, err := gobBytes(pub)
	if err != nil {
		return nil, fmt.Errorf("mana: encoding counters: %w", err)
	}
	all := w.oob.Exchange(w.rank, payload)
	if all == nil {
		return nil, fmt.Errorf("mana: world closed during counter exchange")
	}
	peers := make([]map[uint64]wireCounts, len(all))
	for i, raw := range all {
		if len(raw) == 0 {
			continue
		}
		if err := gobValue(raw, &peers[i]); err != nil {
			return nil, fmt.Errorf("mana: decoding counters from rank %d: %w", i, err)
		}
	}
	// Drain the deficit on every communicator I belong to.
	for vid, info := range w.comms {
		for worldRank, pcounts := range peers {
			entry, ok := pcounts[info.gid]
			if !ok {
				continue
			}
			sentToMe := entry.SentTo[info.myRank]
			got := w.recvd[vid][entry.MyRank]
			for k := got; k < sentToMe; k++ {
				if err := w.drainOne(vid, entry.MyRank); err != nil {
					return nil, fmt.Errorf("mana: draining msg %d of %d from comm rank %d (world %d): %w",
						k+1, sentToMe, entry.MyRank, worldRank, err)
				}
			}
		}
	}
	blob := Blob{
		NextVid:  w.nextVid,
		Log:      w.log,
		Sent:     w.sent,
		Recvd:    w.recvd,
		Buffered: w.buffered,
	}
	out, err := gobBytes(blob)
	if err != nil {
		return nil, fmt.Errorf("mana: encoding blob: %w", err)
	}
	return out, nil
}

// drainOne pulls the next pending message from a peer on one communicator
// into the upper-half buffer: probe for its envelope, then receive its
// packed bytes verbatim.
func (w *Wrapper) drainOne(vid abi.Handle, srcCommRank int) error {
	ic := w.in(vid)
	var st abi.Status
	if err := w.inner.Probe(srcCommRank, w.tagIn(abi.AnyTag), ic, &st); err != nil {
		return err
	}
	w.statusBack(&st)
	buf := make([]byte, st.CountBytes)
	var rst abi.Status
	if err := w.inner.Recv(buf, len(buf), w.iByteType, srcCommRank, int(st.Tag), ic, &rst); err != nil {
		return err
	}
	w.buffered[vid] = append(w.buffered[vid], Drained{
		Source: srcCommRank,
		Tag:    st.Tag,
		Data:   buf,
	})
	bump(w.recvd, vid, srcCommRank)
	return nil
}

// Resume implements the dmtcp.Plugin hook for checkpoints that continue
// running; MANA needs no work here (drained messages are served lazily).
func (w *Wrapper) Resume() error { return nil }

// Restore rebuilds a wrapper's upper-half state from a checkpoint blob
// against a fresh lower half: recipes are replayed to mint equivalent MPI
// objects (a collective operation — every rank restores concurrently), and
// counters plus drained messages are reinstated. The wrapper must be
// freshly constructed with NewWrapper over the new implementation stack.
func (w *Wrapper) Restore(blobBytes []byte) error {
	var blob Blob
	if err := gobValue(blobBytes, &blob); err != nil {
		return fmt.Errorf("mana: decoding blob: %w", err)
	}
	if err := w.replayLog(blob.Log); err != nil {
		return err
	}
	w.nextVid = blob.NextVid
	w.sent = blob.Sent
	w.recvd = blob.Recvd
	w.buffered = blob.Buffered
	if w.sent == nil {
		w.sent = make(map[abi.Handle]map[int]uint64)
	}
	if w.recvd == nil {
		w.recvd = make(map[abi.Handle]map[int]uint64)
	}
	if w.buffered == nil {
		w.buffered = make(map[abi.Handle][]Drained)
	}
	return nil
}

func gobBytes(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobValue(raw []byte, out any) error {
	return gob.NewDecoder(bytes.NewReader(raw)).Decode(out)
}
