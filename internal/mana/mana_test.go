package mana

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/abi"
	"repro/internal/fabric"
	"repro/internal/mukautuva"
	"repro/internal/ops"
	"repro/internal/simnet"
	"repro/internal/types"
)

// runWrapped runs fn per rank with a MANA wrapper over a Mukautuva shim on
// the given implementation.
func runWrapped(t *testing.T, impl string, n int, fn func(w *Wrapper, rank int) error) {
	t.Helper()
	world, err := fabric.NewWorld(simnet.SingleNode(n))
	if err != nil {
		t.Fatal(err)
	}
	defer world.Close()
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			shim, err := mukautuva.Load(impl, world, r, mukautuva.DefaultConfig())
			if err != nil {
				errs <- err
				world.Close()
				return
			}
			w := NewWrapper(shim, world, r, DefaultConfig())
			if err := fn(w, r); err != nil {
				errs <- fmt.Errorf("rank %d: %w", r, err)
				world.Close()
			}
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("wrapped SPMD test timed out")
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestWrapperPresentsStandardABI(t *testing.T) {
	runWrapped(t, "mpich", 1, func(w *Wrapper, rank int) error {
		if w.Lookup(abi.SymCommWorld) != abi.CommWorld {
			return fmt.Errorf("Lookup not standard")
		}
		if w.LookupInt(abi.IntAnySource) != abi.AnySource {
			return fmt.Errorf("LookupInt not standard")
		}
		if w.ImplName() != "mana+mpich" {
			return fmt.Errorf("ImplName = %q", w.ImplName())
		}
		return nil
	})
}

func TestVidsAllocatedForDynamicObjects(t *testing.T) {
	runWrapped(t, "openmpi", 2, func(w *Wrapper, rank int) error {
		dup, err := w.CommDup(abi.CommWorld)
		if err != nil {
			return err
		}
		if dup.Payload() < vidBase {
			return fmt.Errorf("dup handle %v is not a vid", dup)
		}
		vec, err := w.TypeVector(2, 1, 2, abi.TypeInt64)
		if err != nil {
			return err
		}
		if vec.Payload() < vidBase {
			return fmt.Errorf("type handle %v is not a vid", vec)
		}
		if err := w.TypeCommit(vec); err != nil {
			return err
		}
		sz, err := w.TypeSize(vec)
		if err != nil || sz != 16 {
			return fmt.Errorf("TypeSize through vid = %d, %v", sz, err)
		}
		// The event log must have recorded both creations plus the commit.
		if len(w.log) != 3 {
			return fmt.Errorf("event log has %d entries, want 3", len(w.log))
		}
		return nil
	})
}

func TestSendRecvCountersTrack(t *testing.T) {
	runWrapped(t, "mpich", 2, func(w *Wrapper, rank int) error {
		bt := abi.TypeByte
		if rank == 0 {
			for i := 0; i < 3; i++ {
				if err := w.Send([]byte{1}, 1, bt, 1, 5, abi.CommWorld); err != nil {
					return err
				}
			}
			if w.sent[abi.CommWorld][1] != 3 {
				return fmt.Errorf("sent counter = %d, want 3", w.sent[abi.CommWorld][1])
			}
			return nil
		}
		buf := make([]byte, 1)
		for i := 0; i < 3; i++ {
			if err := w.Recv(buf, 1, bt, abi.AnySource, abi.AnyTag, abi.CommWorld, nil); err != nil {
				return err
			}
		}
		if w.recvd[abi.CommWorld][0] != 3 {
			return fmt.Errorf("recvd counter = %d, want 3", w.recvd[abi.CommWorld][0])
		}
		return nil
	})
}

func TestDrainCapturesInFlight(t *testing.T) {
	runWrapped(t, "mpich", 2, func(w *Wrapper, rank int) error {
		bt := abi.TypeByte
		// Rank 0 sends a message rank 1 never receives before the drain.
		if rank == 0 {
			if err := w.Send([]byte{42, 43}, 2, bt, 1, 9, abi.CommWorld); err != nil {
				return err
			}
		}
		blob, err := w.PreCheckpoint()
		if err != nil {
			return err
		}
		if len(blob) == 0 {
			return fmt.Errorf("empty blob")
		}
		if rank == 1 {
			q := w.buffered[abi.CommWorld]
			if len(q) != 1 {
				return fmt.Errorf("buffered %d messages, want 1", len(q))
			}
			d := q[0]
			if d.Source != 0 || d.Tag != 9 || len(d.Data) != 2 || d.Data[0] != 42 {
				return fmt.Errorf("drained message wrong: %+v", d)
			}
			// The drained message is served to a later Recv with correct
			// status.
			buf := make([]byte, 2)
			var st abi.Status
			if err := w.Recv(buf, 2, bt, 0, 9, abi.CommWorld, &st); err != nil {
				return err
			}
			if buf[0] != 42 || buf[1] != 43 {
				return fmt.Errorf("served payload = %v", buf)
			}
			if st.Source != 0 || st.Tag != 9 || st.CountBytes != 2 {
				return fmt.Errorf("served status = %+v", st)
			}
			if len(w.buffered[abi.CommWorld]) != 0 {
				return fmt.Errorf("buffer not consumed")
			}
		}
		return nil
	})
}

func TestDrainRefusesOutstandingRequests(t *testing.T) {
	runWrapped(t, "mpich", 2, func(w *Wrapper, rank int) error {
		bt := abi.TypeByte
		if rank == 1 {
			// Leave an open irecv and attempt to checkpoint: must refuse
			// before any collective exchange happens.
			buf := make([]byte, 1)
			req, err := w.Irecv(buf, 1, bt, 0, 1, abi.CommWorld)
			if err != nil {
				return err
			}
			if _, err := w.PreCheckpoint(); err == nil {
				return fmt.Errorf("drain with outstanding request succeeded")
			} else if abi.ClassOf(err) != abi.ErrPending {
				return fmt.Errorf("error class = %v", abi.ClassOf(err))
			}
			// Complete the request; then the drain is legal.
			if err := w.Wait(req, nil); err != nil {
				return err
			}
			if w.Outstanding() != 0 {
				return fmt.Errorf("outstanding = %d after wait", w.Outstanding())
			}
		} else {
			if err := w.Send([]byte{7}, 1, bt, 1, 1, abi.CommWorld); err != nil {
				return err
			}
		}
		// Both ranks run the (collective) drain; it must now succeed.
		if _, err := w.PreCheckpoint(); err != nil {
			return err
		}
		return nil
	})
}

func TestBufferedProbe(t *testing.T) {
	runWrapped(t, "openmpi", 2, func(w *Wrapper, rank int) error {
		bt := abi.TypeByte
		if rank == 0 {
			if err := w.Send([]byte{1, 2, 3}, 3, bt, 1, 4, abi.CommWorld); err != nil {
				return err
			}
		}
		// The drain is collective: both ranks participate.
		if _, err := w.PreCheckpoint(); err != nil {
			return err
		}
		if rank == 0 {
			return nil
		}
		// Probe must see the buffered message without consuming it.
		var st abi.Status
		if err := w.Probe(abi.AnySource, abi.AnyTag, abi.CommWorld, &st); err != nil {
			return err
		}
		if st.Source != 0 || st.Tag != 4 || st.CountBytes != 3 {
			return fmt.Errorf("probe status = %+v", st)
		}
		found, err := w.Iprobe(0, 4, abi.CommWorld, &st)
		if err != nil || !found {
			return fmt.Errorf("iprobe = %v %v", found, err)
		}
		if len(w.buffered[abi.CommWorld]) != 1 {
			return fmt.Errorf("probe consumed the buffer")
		}
		return nil
	})
}

func TestBlobRoundTripAndReplay(t *testing.T) {
	// Build state on mpich, serialize, replay onto a FRESH openmpi lower
	// half — the cross-implementation rebind in isolation.
	const n = 2
	world1, err := fabric.NewWorld(simnet.SingleNode(n))
	if err != nil {
		t.Fatal(err)
	}
	defer world1.Close()
	blobs := make([][]byte, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			shim, err := mukautuva.Load("mpich", world1, r, mukautuva.DefaultConfig())
			if err != nil {
				t.Error(err)
				return
			}
			w := NewWrapper(shim, world1, r, DefaultConfig())
			dup, err := w.CommDup(abi.CommWorld)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := w.CommSplit(dup, r%2, 0); err != nil {
				t.Error(err)
				return
			}
			vec, err := w.TypeVector(3, 1, 2, abi.TypeInt32)
			if err != nil {
				t.Error(err)
				return
			}
			if err := w.TypeCommit(vec); err != nil {
				t.Error(err)
				return
			}
			blob, err := w.PreCheckpoint()
			if err != nil {
				t.Error(err)
				return
			}
			blobs[r] = blob
		}(r)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	world2, err := fabric.NewWorld(simnet.SingleNode(n))
	if err != nil {
		t.Fatal(err)
	}
	defer world2.Close()
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			shim, err := mukautuva.Load("openmpi", world2, r, mukautuva.DefaultConfig())
			if err != nil {
				t.Error(err)
				return
			}
			w := NewWrapper(shim, world2, r, DefaultConfig())
			if err := w.Restore(blobs[r]); err != nil {
				t.Error(fmt.Errorf("rank %d restore: %w", r, err))
				return
			}
			// The replayed vids must be usable on the new implementation.
			if len(w.log) != 4 {
				t.Errorf("rank %d: replayed log has %d events, want 4", r, len(w.log))
			}
			for vid := range w.comms {
				if _, err := w.CommSize(vid); err != nil {
					t.Errorf("rank %d: comm vid %v unusable after replay: %v", r, vid, err)
				}
			}
		}(r)
	}
	wg.Wait()
}

func TestKernelCostModel(t *testing.T) {
	old := KernelPre5_9.CallCost()
	modern := Kernel5_9Plus.CallCost()
	if old <= modern {
		t.Fatalf("pre-5.9 cost %v must exceed 5.9+ cost %v", old, modern)
	}
	if old < 5*time.Microsecond || old > 20*time.Microsecond {
		t.Fatalf("pre-5.9 per-call cost %v outside the calibrated range", old)
	}
	if KernelPre5_9.String() == KernelVersion(1).String() {
		t.Fatal("kernel names collide")
	}
}

// Property: commGID is deterministic and discriminates parents, ordinals
// and colors.
func TestCommGIDProperty(t *testing.T) {
	f := func(parent uint64, ord uint32, color int16) bool {
		a := commGID(parent, EvCommSplit, ord, int(color))
		b := commGID(parent, EvCommSplit, ord, int(color))
		if a != b {
			return false
		}
		if commGID(parent, EvCommSplit, ord, int(color)) ==
			commGID(parent, EvCommSplit, ord+1, int(color)) {
			return false
		}
		if commGID(parent, EvCommSplit, ord, int(color)) ==
			commGID(parent+1, EvCommSplit, ord, int(color)) {
			return false
		}
		return commGID(parent, EvCommDup, ord, 0) != commGID(parent, EvCommCreate, ord, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUserOpSurvivesBlob(t *testing.T) {
	if err := ops.RegisterUser("mana.test.sum", true,
		func(acc, in []byte, k types.Kind, count int) {
			_ = ops.Apply(ops.OpSum, k, acc, in, count)
		}); err != nil {
		t.Fatal(err)
	}
	runWrapped(t, "mpich", 1, func(w *Wrapper, rank int) error {
		op, err := w.OpCreate("mana.test.sum", true)
		if err != nil {
			return err
		}
		rb := make([]byte, 8)
		if err := w.Allreduce(abi.Int64Bytes([]int64{5}), rb, 1, abi.TypeInt64, op, abi.CommWorld); err != nil {
			return err
		}
		if got := abi.Int64sOf(rb)[0]; got != 5 {
			return fmt.Errorf("user op result = %d", got)
		}
		return nil
	})
}
