package mana

import (
	"fmt"
	"hash/fnv"

	"repro/internal/abi"
)

// EvOp enumerates the MPI-object lifecycle operations MANA records. The
// event log is the upper half's "recipe book": replaying it against a
// fresh lower half rebuilds a semantically equivalent object for every
// virtual id, which is how restart works — including restart under a
// different MPI implementation when the inner table is the Mukautuva shim.
type EvOp uint8

// Logged operations.
const (
	EvCommDup EvOp = iota
	EvCommSplit
	EvCommCreate
	EvCommGroup
	EvGroupIncl
	EvGroupExcl
	EvTypeContig
	EvTypeVector
	EvTypeIndexed
	EvTypeStruct
	EvTypeCommit
	EvOpCreate
	EvCommFree
	EvGroupFree
	EvTypeFree
	EvOpFree
)

var evNames = [...]string{
	EvCommDup: "comm_dup", EvCommSplit: "comm_split", EvCommCreate: "comm_create",
	EvCommGroup: "comm_group", EvGroupIncl: "group_incl", EvGroupExcl: "group_excl",
	EvTypeContig: "type_contiguous", EvTypeVector: "type_vector",
	EvTypeIndexed: "type_indexed", EvTypeStruct: "type_create_struct",
	EvTypeCommit: "type_commit", EvOpCreate: "op_create",
	EvCommFree: "comm_free", EvGroupFree: "group_free",
	EvTypeFree: "type_free", EvOpFree: "op_free",
}

// String names the operation.
func (op EvOp) String() string {
	if int(op) < len(evNames) {
		return evNames[op]
	}
	return fmt.Sprintf("ev(%d)", uint8(op))
}

// Event is one recorded lifecycle operation. All fields are exported for
// gob. Vid is the subject (the created vid, the freed vid, or CommNull
// for a split that returned no communicator on this rank — the event must
// still replay because the call was collective).
type Event struct {
	Op      EvOp
	Vid     abi.Handle
	Parent  abi.Handle
	Aux     abi.Handle
	Ints    []int
	Handles []abi.Handle
	Name    string
	Flag    bool
	GID     uint64 // communicator identity, stored for replay verification
}

// commGID derives a child communicator's globally consistent identity from
// its parent's identity and the creation ordinal (plus the split color).
// All members of the child observe identical inputs, so all derive the
// same gid without communication; the drain protocol keys its counter
// exchange on these.
func commGID(parent uint64, op EvOp, ordinal uint32, color int) uint64 {
	h := fnv.New64a()
	var b [21]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(parent >> (8 * i))
	}
	b[8] = byte(op)
	for i := 0; i < 4; i++ {
		b[9+i] = byte(ordinal >> (8 * i))
	}
	c := uint64(int64(color))
	for i := 0; i < 8; i++ {
		b[13+i] = byte(c >> (8 * i))
	}
	h.Write(b[:])
	return h.Sum64()
}

// record appends an event to the log.
func (w *Wrapper) record(ev Event) { w.log = append(w.log, ev) }

// replayLog re-executes the event log against the (fresh) inner table,
// rebinding every vid. It is the restart path.
func (w *Wrapper) replayLog(log []Event) error {
	for i, ev := range log {
		if err := w.replayOne(ev); err != nil {
			return fmt.Errorf("mana: replaying event %d (%v vid=%v): %w", i, ev.Op, ev.Vid, err)
		}
	}
	w.log = log
	return nil
}

func (w *Wrapper) replayOne(ev Event) error {
	switch ev.Op {
	case EvCommDup:
		n, err := w.inner.CommDup(w.in(ev.Parent))
		if err != nil {
			return err
		}
		return w.bindComm(ev, n)
	case EvCommSplit:
		n, err := w.inner.CommSplit(w.in(ev.Parent), w.splitColorIn(ev.Ints[0]), ev.Ints[1])
		if err != nil {
			return err
		}
		return w.bindComm(ev, n)
	case EvCommCreate:
		n, err := w.inner.CommCreate(w.in(ev.Parent), w.in(ev.Aux))
		if err != nil {
			return err
		}
		return w.bindComm(ev, n)
	case EvCommGroup:
		n, err := w.inner.CommGroup(w.in(ev.Parent))
		if err != nil {
			return err
		}
		w.fwd[ev.Vid] = n
		return nil
	case EvGroupIncl:
		n, err := w.inner.GroupIncl(w.in(ev.Parent), ev.Ints)
		if err != nil {
			return err
		}
		w.fwd[ev.Vid] = n
		return nil
	case EvGroupExcl:
		n, err := w.inner.GroupExcl(w.in(ev.Parent), ev.Ints)
		if err != nil {
			return err
		}
		w.fwd[ev.Vid] = n
		return nil
	case EvTypeContig:
		n, err := w.inner.TypeContiguous(ev.Ints[0], w.in(ev.Parent))
		if err != nil {
			return err
		}
		w.fwd[ev.Vid] = n
		return nil
	case EvTypeVector:
		n, err := w.inner.TypeVector(ev.Ints[0], ev.Ints[1], ev.Ints[2], w.in(ev.Parent))
		if err != nil {
			return err
		}
		w.fwd[ev.Vid] = n
		return nil
	case EvTypeIndexed:
		half := len(ev.Ints) / 2
		n, err := w.inner.TypeIndexed(ev.Ints[:half], ev.Ints[half:], w.in(ev.Parent))
		if err != nil {
			return err
		}
		w.fwd[ev.Vid] = n
		return nil
	case EvTypeStruct:
		half := len(ev.Ints) / 2
		inner := make([]abi.Handle, len(ev.Handles))
		for i, h := range ev.Handles {
			inner[i] = w.in(h)
		}
		n, err := w.inner.TypeCreateStruct(ev.Ints[:half], ev.Ints[half:], inner)
		if err != nil {
			return err
		}
		w.fwd[ev.Vid] = n
		return nil
	case EvTypeCommit:
		return w.inner.TypeCommit(w.in(ev.Vid))
	case EvOpCreate:
		n, err := w.inner.OpCreate(ev.Name, ev.Flag)
		if err != nil {
			return err
		}
		w.fwd[ev.Vid] = n
		return nil
	case EvCommFree:
		err := w.inner.CommFree(w.in(ev.Vid))
		delete(w.fwd, ev.Vid)
		delete(w.comms, ev.Vid)
		delete(w.sent, ev.Vid)
		delete(w.recvd, ev.Vid)
		delete(w.buffered, ev.Vid)
		return err
	case EvGroupFree:
		err := w.inner.GroupFree(w.in(ev.Vid))
		delete(w.fwd, ev.Vid)
		return err
	case EvTypeFree:
		err := w.inner.TypeFree(w.in(ev.Vid))
		delete(w.fwd, ev.Vid)
		return err
	case EvOpFree:
		err := w.inner.OpFree(w.in(ev.Vid))
		delete(w.fwd, ev.Vid)
		return err
	}
	return fmt.Errorf("unknown event op %v", ev.Op)
}

// splitColorIn translates the standard Undefined color sentinel to the
// inner value.
func (w *Wrapper) splitColorIn(color int) int {
	if color == abi.Undefined {
		return w.iUndefined
	}
	return color
}

// bindComm rebinds a communicator vid after replaying its creation,
// verifying the recomputed gid against the recorded one.
func (w *Wrapper) bindComm(ev Event, native abi.Handle) error {
	parentInfo := w.comms[ev.Parent]
	if parentInfo == nil {
		return fmt.Errorf("parent communicator %v unknown", ev.Parent)
	}
	ord := parentInfo.nextOrd
	parentInfo.nextOrd++
	color := 0
	if ev.Op == EvCommSplit {
		color = ev.Ints[0]
	}
	gid := commGID(parentInfo.gid, ev.Op, ord, color)
	if ev.GID != 0 && gid != ev.GID {
		return fmt.Errorf("gid mismatch on replay: %#x != recorded %#x", gid, ev.GID)
	}
	if ev.Vid == abi.CommNull {
		// This rank was not a member (split with UNDEFINED color or a
		// group it does not belong to); nothing to bind.
		return nil
	}
	w.fwd[ev.Vid] = native
	myRank, err := w.inner.CommRank(native)
	if err != nil {
		return err
	}
	size, err := w.inner.CommSize(native)
	if err != nil {
		return err
	}
	w.comms[ev.Vid] = &commInfo{gid: gid, myRank: myRank, size: size}
	return nil
}
