package mana

import (
	"repro/internal/abi"
)

// ImplName reports the full stack identity.
func (w *Wrapper) ImplName() string { return "mana+" + w.inner.ImplName() }

// Lookup resolves constants to standard values: the application above MANA
// sees only the standard ABI, so handles in its state (and in checkpoint
// images) stay meaningful across restarts.
func (w *Wrapper) Lookup(sym abi.Sym) abi.Handle { return abi.StdLookup(sym) }

// LookupInt resolves integer constants to standard values.
func (w *Wrapper) LookupInt(sym abi.IntSym) int { return abi.StdLookupInt(sym) }

// matchBuffered finds the oldest drained message matching (source, tag)
// with standard wildcards; remove=false implements probing.
func (w *Wrapper) matchBuffered(comm abi.Handle, source, tag int, remove bool) (Drained, bool) {
	q := w.buffered[comm]
	for i, d := range q {
		if source != abi.AnySource && d.Source != source {
			continue
		}
		if tag != abi.AnyTag && d.Tag != int32(tag) {
			continue
		}
		if remove {
			w.buffered[comm] = append(q[:i:i], q[i+1:]...)
		}
		return d, true
	}
	return Drained{}, false
}

// deliverBuffered hands a drained message to the application through the
// lower half's own unpack machinery: the wrapper re-injects the packed
// bytes as a self-send on the same communicator and immediately receives
// them with the application's datatype. The status is then rewritten with
// the original envelope facts.
func (w *Wrapper) deliverBuffered(d Drained, buf []byte, count int, dtype, comm abi.Handle, st *abi.Status) error {
	ic := w.in(comm)
	info := w.comms[comm]
	if info == nil {
		return abi.Errorf(abi.ErrComm, "mana", "buffered delivery on unknown communicator %v", comm)
	}
	if err := w.inner.Send(d.Data, len(d.Data), w.iByteType, info.myRank, int(d.Tag), ic); err != nil {
		return w.err(err)
	}
	var tmp abi.Status
	err := w.inner.Recv(buf, count, w.in(dtype), info.myRank, int(d.Tag), ic, &tmp)
	w.statusBack(&tmp)
	tmp.Source = int32(d.Source)
	tmp.Tag = d.Tag
	if st != nil {
		*st = tmp
	}
	return w.err(err)
}

func (w *Wrapper) Send(buf []byte, count int, dtype abi.Handle, dest, tag int, comm abi.Handle) error {
	w.charge()
	err := w.inner.Send(buf, count, w.in(dtype), w.peerIn(dest), tag, w.in(comm))
	if err == nil && dest != abi.ProcNull {
		bump(w.sent, comm, dest)
	}
	return w.err(err)
}

func (w *Wrapper) Recv(buf []byte, count int, dtype abi.Handle, source, tag int, comm abi.Handle, st *abi.Status) error {
	w.charge()
	if d, ok := w.matchBuffered(comm, source, tag, true); ok {
		return w.deliverBuffered(d, buf, count, dtype, comm, st)
	}
	var tmp abi.Status
	err := w.inner.Recv(buf, count, w.in(dtype), w.peerIn(source), w.tagIn(tag), w.in(comm), &tmp)
	w.statusBack(&tmp)
	if err == nil && tmp.Source >= 0 {
		bump(w.recvd, comm, int(tmp.Source))
	}
	if st != nil {
		*st = tmp
	}
	return w.err(err)
}

func (w *Wrapper) Isend(buf []byte, count int, dtype abi.Handle, dest, tag int, comm abi.Handle) (abi.Handle, error) {
	w.charge()
	r, err := w.inner.Isend(buf, count, w.in(dtype), w.peerIn(dest), tag, w.in(comm))
	if err != nil {
		return abi.RequestNull, w.err(err)
	}
	if dest != abi.ProcNull {
		bump(w.sent, comm, dest)
	}
	w.nextReq++
	rv := abi.MakeHandle(abi.ClassRequest, w.nextReq)
	w.fwd[rv] = r
	w.reqs[rv] = &reqInfo{isRecv: false, comm: comm}
	return rv, nil
}

func (w *Wrapper) Irecv(buf []byte, count int, dtype abi.Handle, source, tag int, comm abi.Handle) (abi.Handle, error) {
	w.charge()
	w.nextReq++
	rv := abi.MakeHandle(abi.ClassRequest, w.nextReq)
	if d, ok := w.matchBuffered(comm, source, tag, true); ok {
		var st abi.Status
		err := w.deliverBuffered(d, buf, count, dtype, comm, &st)
		w.reqs[rv] = &reqInfo{isRecv: true, comm: comm, pseudo: true, status: st, code: err}
		return rv, nil
	}
	r, err := w.inner.Irecv(buf, count, w.in(dtype), w.peerIn(source), w.tagIn(tag), w.in(comm))
	if err != nil {
		return abi.RequestNull, w.err(err)
	}
	w.fwd[rv] = r
	w.reqs[rv] = &reqInfo{isRecv: true, comm: comm}
	return rv, nil
}

func (w *Wrapper) Wait(req abi.Handle, st *abi.Status) error {
	w.charge()
	info, ok := w.reqs[req]
	if !ok {
		return abi.Errorf(abi.ErrRequest, "mana", "unknown request %v", req)
	}
	if info.pseudo {
		delete(w.reqs, req)
		if st != nil {
			*st = info.status
		}
		return info.code
	}
	var tmp abi.Status
	err := w.inner.Wait(w.in(req), &tmp)
	w.statusBack(&tmp)
	if err == nil && info.isRecv && tmp.Source >= 0 {
		bump(w.recvd, info.comm, int(tmp.Source))
	}
	delete(w.reqs, req)
	delete(w.fwd, req)
	if st != nil {
		*st = tmp
	}
	return w.err(err)
}

func (w *Wrapper) Test(req abi.Handle, st *abi.Status) (bool, error) {
	w.charge()
	info, ok := w.reqs[req]
	if !ok {
		return false, abi.Errorf(abi.ErrRequest, "mana", "unknown request %v", req)
	}
	if info.pseudo {
		delete(w.reqs, req)
		if st != nil {
			*st = info.status
		}
		return true, info.code
	}
	var tmp abi.Status
	done, err := w.inner.Test(w.in(req), &tmp)
	if !done {
		return false, w.err(err)
	}
	w.statusBack(&tmp)
	if err == nil && info.isRecv && tmp.Source >= 0 {
		bump(w.recvd, info.comm, int(tmp.Source))
	}
	delete(w.reqs, req)
	delete(w.fwd, req)
	if st != nil {
		*st = tmp
	}
	return true, w.err(err)
}

func (w *Wrapper) Waitall(reqs []abi.Handle, sts []abi.Status) error {
	if sts != nil && len(sts) != len(reqs) {
		return abi.Errorf(abi.ErrArg, "mana", "waitall status slice length mismatch")
	}
	var firstErr error
	for i, r := range reqs {
		var st abi.Status
		if err := w.Wait(r, &st); err != nil && firstErr == nil {
			firstErr = err
		}
		if sts != nil {
			sts[i] = st
		}
	}
	return firstErr
}

func (w *Wrapper) Sendrecv(sendbuf []byte, scount int, stype abi.Handle, dest, stag int,
	recvbuf []byte, rcount int, rtype abi.Handle, source, rtag int,
	comm abi.Handle, st *abi.Status) error {
	rr, err := w.Irecv(recvbuf, rcount, rtype, source, rtag, comm)
	if err != nil {
		return err
	}
	if err := w.Send(sendbuf, scount, stype, dest, stag, comm); err != nil {
		return err
	}
	return w.Wait(rr, st)
}

func (w *Wrapper) Probe(source, tag int, comm abi.Handle, st *abi.Status) error {
	w.charge()
	if d, ok := w.matchBuffered(comm, source, tag, false); ok {
		if st != nil {
			st.Source = int32(d.Source)
			st.Tag = d.Tag
			st.Error = 0
			st.CountBytes = uint64(len(d.Data))
		}
		return nil
	}
	err := w.inner.Probe(w.peerIn(source), w.tagIn(tag), w.in(comm), st)
	w.statusBack(st)
	return w.err(err)
}

func (w *Wrapper) Iprobe(source, tag int, comm abi.Handle, st *abi.Status) (bool, error) {
	w.charge()
	if d, ok := w.matchBuffered(comm, source, tag, false); ok {
		if st != nil {
			st.Source = int32(d.Source)
			st.Tag = d.Tag
			st.Error = 0
			st.CountBytes = uint64(len(d.Data))
		}
		return true, nil
	}
	found, err := w.inner.Iprobe(w.peerIn(source), w.tagIn(tag), w.in(comm), st)
	if found {
		w.statusBack(st)
	}
	return found, w.err(err)
}

func (w *Wrapper) Barrier(comm abi.Handle) error {
	w.charge()
	return w.err(w.inner.Barrier(w.in(comm)))
}

func (w *Wrapper) Bcast(buf []byte, count int, dtype abi.Handle, root int, comm abi.Handle) error {
	w.charge()
	return w.err(w.inner.Bcast(buf, count, w.in(dtype), root, w.in(comm)))
}

func (w *Wrapper) Reduce(sendbuf, recvbuf []byte, count int, dtype, op abi.Handle, root int, comm abi.Handle) error {
	w.charge()
	return w.err(w.inner.Reduce(sendbuf, recvbuf, count, w.in(dtype), w.in(op), root, w.in(comm)))
}

func (w *Wrapper) Allreduce(sendbuf, recvbuf []byte, count int, dtype, op abi.Handle, comm abi.Handle) error {
	w.charge()
	return w.err(w.inner.Allreduce(sendbuf, recvbuf, count, w.in(dtype), w.in(op), w.in(comm)))
}

func (w *Wrapper) Gather(sendbuf []byte, scount int, stype abi.Handle,
	recvbuf []byte, rcount int, rtype abi.Handle, root int, comm abi.Handle) error {
	w.charge()
	return w.err(w.inner.Gather(sendbuf, scount, w.in(stype), recvbuf, rcount, w.in(rtype), root, w.in(comm)))
}

func (w *Wrapper) Allgather(sendbuf []byte, scount int, stype abi.Handle,
	recvbuf []byte, rcount int, rtype abi.Handle, comm abi.Handle) error {
	w.charge()
	return w.err(w.inner.Allgather(sendbuf, scount, w.in(stype), recvbuf, rcount, w.in(rtype), w.in(comm)))
}

func (w *Wrapper) Scatter(sendbuf []byte, scount int, stype abi.Handle,
	recvbuf []byte, rcount int, rtype abi.Handle, root int, comm abi.Handle) error {
	w.charge()
	return w.err(w.inner.Scatter(sendbuf, scount, w.in(stype), recvbuf, rcount, w.in(rtype), root, w.in(comm)))
}

func (w *Wrapper) Alltoall(sendbuf []byte, scount int, stype abi.Handle,
	recvbuf []byte, rcount int, rtype abi.Handle, comm abi.Handle) error {
	w.charge()
	return w.err(w.inner.Alltoall(sendbuf, scount, w.in(stype), recvbuf, rcount, w.in(rtype), w.in(comm)))
}

func (w *Wrapper) CommSize(comm abi.Handle) (int, error) {
	w.charge()
	n, err := w.inner.CommSize(w.in(comm))
	return n, w.err(err)
}

func (w *Wrapper) CommRank(comm abi.Handle) (int, error) {
	w.charge()
	r, err := w.inner.CommRank(w.in(comm))
	return r, w.err(err)
}

// newCommVid allocates a vid + commInfo for a freshly created inner
// communicator and records the creation event.
func (w *Wrapper) newCommVid(op EvOp, parent, aux abi.Handle, native abi.Handle, ints []int) (abi.Handle, error) {
	parentInfo := w.comms[parent]
	if parentInfo == nil {
		return abi.CommNull, abi.Errorf(abi.ErrComm, "mana", "unknown parent communicator %v", parent)
	}
	ord := parentInfo.nextOrd
	parentInfo.nextOrd++
	color := 0
	if op == EvCommSplit {
		color = ints[0]
	}
	gid := commGID(parentInfo.gid, op, ord, color)
	ev := Event{Op: op, Parent: parent, Aux: aux, Ints: ints, GID: gid, Vid: abi.CommNull}
	if native == w.iCommNull {
		// Collective participation without membership (UNDEFINED color).
		w.record(ev)
		return abi.CommNull, nil
	}
	v := w.vid(abi.ClassComm, native)
	ev.Vid = v
	w.record(ev)
	myRank, err := w.inner.CommRank(native)
	if err != nil {
		return abi.CommNull, w.err(err)
	}
	size, err := w.inner.CommSize(native)
	if err != nil {
		return abi.CommNull, w.err(err)
	}
	w.comms[v] = &commInfo{gid: gid, myRank: myRank, size: size}
	return v, nil
}

func (w *Wrapper) CommDup(comm abi.Handle) (abi.Handle, error) {
	w.charge()
	n, err := w.inner.CommDup(w.in(comm))
	if err != nil {
		return abi.CommNull, w.err(err)
	}
	return w.newCommVid(EvCommDup, comm, abi.HandleNull, n, nil)
}

func (w *Wrapper) CommSplit(comm abi.Handle, color, key int) (abi.Handle, error) {
	w.charge()
	n, err := w.inner.CommSplit(w.in(comm), w.splitColorIn(color), key)
	if err != nil {
		return abi.CommNull, w.err(err)
	}
	return w.newCommVid(EvCommSplit, comm, abi.HandleNull, n, []int{color, key})
}

func (w *Wrapper) CommCreate(comm, group abi.Handle) (abi.Handle, error) {
	w.charge()
	n, err := w.inner.CommCreate(w.in(comm), w.in(group))
	if err != nil {
		return abi.CommNull, w.err(err)
	}
	return w.newCommVid(EvCommCreate, comm, group, n, nil)
}

func (w *Wrapper) CommGroup(comm abi.Handle) (abi.Handle, error) {
	w.charge()
	n, err := w.inner.CommGroup(w.in(comm))
	if err != nil {
		return abi.GroupNull, w.err(err)
	}
	v := w.vid(abi.ClassGroup, n)
	w.record(Event{Op: EvCommGroup, Vid: v, Parent: comm})
	return v, nil
}

func (w *Wrapper) CommFree(comm abi.Handle) error {
	w.charge()
	err := w.inner.CommFree(w.in(comm))
	if err != nil {
		return w.err(err)
	}
	w.record(Event{Op: EvCommFree, Vid: comm})
	delete(w.fwd, comm)
	delete(w.comms, comm)
	delete(w.sent, comm)
	delete(w.recvd, comm)
	delete(w.buffered, comm)
	return nil
}

func (w *Wrapper) GroupSize(group abi.Handle) (int, error) {
	w.charge()
	n, err := w.inner.GroupSize(w.in(group))
	return n, w.err(err)
}

func (w *Wrapper) GroupRank(group abi.Handle) (int, error) {
	w.charge()
	r, err := w.inner.GroupRank(w.in(group))
	if r == w.iUndefined {
		r = abi.Undefined
	}
	return r, w.err(err)
}

func (w *Wrapper) GroupIncl(group abi.Handle, ranks []int) (abi.Handle, error) {
	w.charge()
	n, err := w.inner.GroupIncl(w.in(group), ranks)
	if err != nil {
		return abi.GroupNull, w.err(err)
	}
	v := w.vid(abi.ClassGroup, n)
	w.record(Event{Op: EvGroupIncl, Vid: v, Parent: group, Ints: append([]int(nil), ranks...)})
	return v, nil
}

func (w *Wrapper) GroupExcl(group abi.Handle, ranks []int) (abi.Handle, error) {
	w.charge()
	n, err := w.inner.GroupExcl(w.in(group), ranks)
	if err != nil {
		return abi.GroupNull, w.err(err)
	}
	v := w.vid(abi.ClassGroup, n)
	w.record(Event{Op: EvGroupExcl, Vid: v, Parent: group, Ints: append([]int(nil), ranks...)})
	return v, nil
}

func (w *Wrapper) GroupTranslateRanks(g1 abi.Handle, ranks []int, g2 abi.Handle) ([]int, error) {
	w.charge()
	out, err := w.inner.GroupTranslateRanks(w.in(g1), ranks, w.in(g2))
	for i := range out {
		if out[i] == w.iUndefined {
			out[i] = abi.Undefined
		}
	}
	return out, w.err(err)
}

func (w *Wrapper) GroupFree(group abi.Handle) error {
	w.charge()
	err := w.inner.GroupFree(w.in(group))
	if err != nil {
		return w.err(err)
	}
	w.record(Event{Op: EvGroupFree, Vid: group})
	delete(w.fwd, group)
	return nil
}

func (w *Wrapper) TypeContiguous(count int, inner abi.Handle) (abi.Handle, error) {
	w.charge()
	n, err := w.inner.TypeContiguous(count, w.in(inner))
	if err != nil {
		return abi.TypeNull, w.err(err)
	}
	v := w.vid(abi.ClassType, n)
	w.record(Event{Op: EvTypeContig, Vid: v, Parent: inner, Ints: []int{count}})
	return v, nil
}

func (w *Wrapper) TypeVector(count, blocklen, stride int, inner abi.Handle) (abi.Handle, error) {
	w.charge()
	n, err := w.inner.TypeVector(count, blocklen, stride, w.in(inner))
	if err != nil {
		return abi.TypeNull, w.err(err)
	}
	v := w.vid(abi.ClassType, n)
	w.record(Event{Op: EvTypeVector, Vid: v, Parent: inner, Ints: []int{count, blocklen, stride}})
	return v, nil
}

func (w *Wrapper) TypeIndexed(blocklens, displs []int, inner abi.Handle) (abi.Handle, error) {
	w.charge()
	n, err := w.inner.TypeIndexed(blocklens, displs, w.in(inner))
	if err != nil {
		return abi.TypeNull, w.err(err)
	}
	v := w.vid(abi.ClassType, n)
	ints := append(append([]int(nil), blocklens...), displs...)
	w.record(Event{Op: EvTypeIndexed, Vid: v, Parent: inner, Ints: ints})
	return v, nil
}

func (w *Wrapper) TypeCreateStruct(blocklens, displs []int, typs []abi.Handle) (abi.Handle, error) {
	w.charge()
	innerTyps := make([]abi.Handle, len(typs))
	for i, t := range typs {
		innerTyps[i] = w.in(t)
	}
	n, err := w.inner.TypeCreateStruct(blocklens, displs, innerTyps)
	if err != nil {
		return abi.TypeNull, w.err(err)
	}
	v := w.vid(abi.ClassType, n)
	ints := append(append([]int(nil), blocklens...), displs...)
	w.record(Event{Op: EvTypeStruct, Vid: v, Ints: ints, Handles: append([]abi.Handle(nil), typs...)})
	return v, nil
}

func (w *Wrapper) TypeCommit(dtype abi.Handle) error {
	w.charge()
	if err := w.inner.TypeCommit(w.in(dtype)); err != nil {
		return w.err(err)
	}
	w.record(Event{Op: EvTypeCommit, Vid: dtype})
	return nil
}

func (w *Wrapper) TypeFree(dtype abi.Handle) error {
	w.charge()
	if err := w.inner.TypeFree(w.in(dtype)); err != nil {
		return w.err(err)
	}
	w.record(Event{Op: EvTypeFree, Vid: dtype})
	delete(w.fwd, dtype)
	return nil
}

func (w *Wrapper) TypeSize(dtype abi.Handle) (int, error) {
	w.charge()
	n, err := w.inner.TypeSize(w.in(dtype))
	return n, w.err(err)
}

func (w *Wrapper) TypeExtent(dtype abi.Handle) (int, error) {
	w.charge()
	n, err := w.inner.TypeExtent(w.in(dtype))
	return n, w.err(err)
}

func (w *Wrapper) GetCount(st *abi.Status, dtype abi.Handle) (int, error) {
	w.charge()
	n, err := w.inner.GetCount(st, w.in(dtype))
	if n == w.iUndefined {
		n = abi.Undefined
	}
	return n, w.err(err)
}

func (w *Wrapper) OpCreate(name string, commute bool) (abi.Handle, error) {
	w.charge()
	n, err := w.inner.OpCreate(name, commute)
	if err != nil {
		return abi.OpNull, w.err(err)
	}
	v := w.vid(abi.ClassOp, n)
	w.record(Event{Op: EvOpCreate, Vid: v, Name: name, Flag: commute})
	return v, nil
}

func (w *Wrapper) OpFree(op abi.Handle) error {
	w.charge()
	if err := w.inner.OpFree(w.in(op)); err != nil {
		return w.err(err)
	}
	w.record(Event{Op: EvOpFree, Vid: op})
	delete(w.fwd, op)
	return nil
}

func (w *Wrapper) Abort(comm abi.Handle, code int) error {
	return w.err(w.inner.Abort(w.in(comm), code))
}

// The ULFM (MPIX_*) surface. Revocation, agreement and failure
// acknowledgement are stateless from the checkpointer's point of view
// and pass straight through. The handle-creating calls — CommShrink and
// CommFailureGetAcked — are refused: a shrunken communicator's recipe is
// a function of which ranks died, which no restart replay can
// reproduce, so ULFM in-place recovery and MANA checkpoint/restart are
// alternative fault-tolerance paths, not composable ones (core enforces
// the same split: shrink-mode recovery runs checkpointer-free stacks).

func (w *Wrapper) CommRevoke(comm abi.Handle) error {
	w.charge()
	return w.err(w.inner.CommRevoke(w.in(comm)))
}

func (w *Wrapper) CommShrink(comm abi.Handle) (abi.Handle, error) {
	return abi.CommNull, abi.Errorf(abi.ErrUnsupported, "mana",
		"MPIX_Comm_shrink under a checkpointing wrapper: a shrunken communicator has no replayable recipe; use the checkpoint-free ULFM stack")
}

func (w *Wrapper) CommAgree(comm abi.Handle, flag uint64) (uint64, error) {
	w.charge()
	out, err := w.inner.CommAgree(w.in(comm), flag)
	return out, w.err(err)
}

func (w *Wrapper) CommFailureAck(comm abi.Handle) error {
	w.charge()
	return w.err(w.inner.CommFailureAck(w.in(comm)))
}

func (w *Wrapper) CommFailureGetAcked(comm abi.Handle) (abi.Handle, error) {
	return abi.GroupNull, abi.Errorf(abi.ErrUnsupported, "mana",
		"MPIX_Comm_failure_get_acked under a checkpointing wrapper: acknowledged-failure groups have no replayable recipe")
}
