// Package mana reproduces the MANA transparent checkpointing package for
// MPI (MPI-Agnostic Network-Agnostic checkpointing, built as a DMTCP
// plugin), revised as in the paper to speak the standard MPI ABI:
//
//   - the Wrapper interposes on every MPI call (libmana.so's LD_PRELOAD
//     wrappers), presenting the standard ABI to the application;
//   - application-visible handles are virtual ids that stay constant
//     across checkpoint/restart, while the lower-half handles they map to
//     are rebound at restart by replaying recorded construction recipes;
//   - on checkpoint, in-flight point-to-point messages are drained into
//     upper-half buffers using send/receive counter exchange, MANA's
//     actual algorithm;
//   - each call pays the split-process FSGSBASE context-switch cost (see
//     fsgsbase.go), reproducing the paper's overhead explanation.
//
// Stacked over the Mukautuva shim (internal/mukautuva), the wrapper's
// serialized state is implementation-independent, which is what lets a
// job checkpoint under Open MPI and restart under MPICH (Figure 6). The
// wrapper also runs directly over a native binding — the paper's older
// "virtual id" configuration — in which case restart is only legal under
// the same implementation.
//
// In the README's layer diagram MANA is the checkpointer-interposition
// entry of the bindings-and-shims row (Sections 3 and 5.3): it wraps
// whatever function table it is given, native or shimmed.
package mana

import (
	"time"

	"repro/internal/abi"
	"repro/internal/fabric"
	"repro/internal/ops"
	"repro/internal/simnet"
	"repro/internal/types"
)

// Config tunes the wrapper.
type Config struct {
	// Kernel selects the FSGSBASE cost model (the paper's testbed is
	// KernelPre5_9).
	Kernel KernelVersion
	// VidCost is the bookkeeping cost of one wrapper call (virtual id
	// lookup and counter updates).
	VidCost time.Duration
	// ErrClass maps in-status error codes from the inner table's space to
	// standard classes. Leave nil when the inner table is the Mukautuva
	// shim (already standard).
	ErrClass func(code int) abi.ErrClass
}

// DefaultConfig matches the paper's testbed: old kernel, syscall-priced
// context switches.
func DefaultConfig() Config {
	return Config{Kernel: KernelPre5_9, VidCost: 60 * time.Nanosecond}
}

// vidBase is the first payload for virtual-id handles. It sits far above
// the standard ABI's predefined payloads, so predefined constants pass
// through unvirtualized — exactly the property that keeps them stable in
// checkpoint images.
const vidBase = 0x00f00000

// reqBase is the payload range for request virtual ids (not logged; they
// never survive a checkpoint because safe points require quiescence).
const reqBase = 0x00400000

// commInfo tracks the drain-relevant facts of a communicator vid.
type commInfo struct {
	gid     uint64 // globally consistent communicator identity
	myRank  int    // my rank within the communicator
	size    int
	nextOrd uint32 // per-parent child ordinal (gid derivation)
}

// Drained is one in-flight message pulled into the upper half at
// checkpoint time: packed bytes plus the matching envelope facts.
type Drained struct {
	Source int // communicator rank of the sender
	Tag    int32
	Data   []byte
}

// reqInfo is the upper half's view of an outstanding request.
type reqInfo struct {
	isRecv bool
	comm   abi.Handle // comm vid for receive counting
	pseudo bool       // satisfied from the drained-message buffer
	status abi.Status // pseudo completion status
	code   error
}

// Wrapper is libmana.so: an abi.FuncTable interposed above the lower half.
type Wrapper struct {
	inner abi.FuncTable
	cfg   Config
	clock *simnet.Clock
	oob   *fabric.OOB
	rank  int // world rank

	fwd     map[abi.Handle]abi.Handle // vid/predefined -> inner handle
	nextVid uint64
	log     []Event

	comms map[abi.Handle]*commInfo

	reqs    map[abi.Handle]*reqInfo
	nextReq uint64

	sent     map[abi.Handle]map[int]uint64 // comm vid -> dest comm rank -> msgs
	recvd    map[abi.Handle]map[int]uint64 // comm vid -> src comm rank -> msgs
	buffered map[abi.Handle][]Drained

	// Inner constants captured at bind time.
	iAnySource, iAnyTag, iProcNull, iRoot, iUndefined int
	iCommNull, iGroupNull, iTypeNull, iOpNull         abi.Handle
	iReqNull                                          abi.Handle
	iByteType                                         abi.Handle
}

var _ abi.FuncTable = (*Wrapper)(nil)

// NewWrapper interposes MANA above an inner function table for one rank.
// The world provides the out-of-band plane used by the drain protocol.
func NewWrapper(inner abi.FuncTable, w *fabric.World, rank int, cfg Config) *Wrapper {
	if cfg.ErrClass == nil {
		cfg.ErrClass = func(code int) abi.ErrClass { return abi.ErrClass(code) }
	}
	mw := &Wrapper{
		inner:    inner,
		cfg:      cfg,
		clock:    w.Endpoint(rank).Clock(),
		oob:      w.OOB(),
		rank:     rank,
		fwd:      make(map[abi.Handle]abi.Handle),
		nextVid:  vidBase,
		comms:    make(map[abi.Handle]*commInfo),
		reqs:     make(map[abi.Handle]*reqInfo),
		nextReq:  reqBase,
		sent:     make(map[abi.Handle]map[int]uint64),
		recvd:    make(map[abi.Handle]map[int]uint64),
		buffered: make(map[abi.Handle][]Drained),
	}
	syms := []abi.Sym{
		abi.SymCommWorld, abi.SymCommSelf, abi.SymCommNull,
		abi.SymGroupNull, abi.SymGroupEmpty, abi.SymTypeNull,
		abi.SymOpNull, abi.SymRequestNull,
	}
	for _, k := range types.Kinds() {
		syms = append(syms, abi.SymForKind(k))
	}
	for _, op := range ops.Ops() {
		syms = append(syms, abi.SymForOp(op))
	}
	for _, sym := range syms {
		mw.fwd[abi.StdLookup(sym)] = inner.Lookup(sym)
	}
	mw.iCommNull = inner.Lookup(abi.SymCommNull)
	mw.iGroupNull = inner.Lookup(abi.SymGroupNull)
	mw.iTypeNull = inner.Lookup(abi.SymTypeNull)
	mw.iOpNull = inner.Lookup(abi.SymOpNull)
	mw.iReqNull = inner.Lookup(abi.SymRequestNull)
	mw.iByteType = inner.Lookup(abi.SymForKind(types.KindByte))
	mw.iAnySource = inner.LookupInt(abi.IntAnySource)
	mw.iAnyTag = inner.LookupInt(abi.IntAnyTag)
	mw.iProcNull = inner.LookupInt(abi.IntProcNull)
	mw.iRoot = inner.LookupInt(abi.IntRoot)
	mw.iUndefined = inner.LookupInt(abi.IntUndefined)

	// Predefined communicators are live from the start.
	size, _ := inner.CommSize(inner.Lookup(abi.SymCommWorld))
	mw.comms[abi.CommWorld] = &commInfo{gid: 1, myRank: rank, size: size}
	mw.comms[abi.CommSelf] = &commInfo{gid: selfGID(rank), myRank: 0, size: 1}
	return mw
}

// selfGID keeps each rank's MPI_COMM_SELF distinct in the drain exchange.
func selfGID(rank int) uint64 { return 0x5e1f_0000_0000_0000 | uint64(rank) }

// Inner exposes the lower-half table (used by the restart driver).
func (w *Wrapper) Inner() abi.FuncTable { return w.inner }

// Outstanding reports open requests; checkpoints require zero.
func (w *Wrapper) Outstanding() int { return len(w.reqs) }

// charge bills one wrapper call: virtual-id bookkeeping plus the
// split-process fs-register round trip.
func (w *Wrapper) charge() {
	w.clock.Advance(w.cfg.VidCost + w.cfg.Kernel.CallCost())
}

// in translates an application handle (predefined or vid) to the inner
// handle.
func (w *Wrapper) in(h abi.Handle) abi.Handle {
	if n, ok := w.fwd[h]; ok {
		return n
	}
	switch h.HandleClass() {
	case abi.ClassComm:
		return w.iCommNull
	case abi.ClassGroup:
		return w.iGroupNull
	case abi.ClassType:
		return w.iTypeNull
	case abi.ClassOp:
		return w.iOpNull
	case abi.ClassRequest:
		return w.iReqNull
	}
	return w.iTypeNull
}

// vid mints a fresh virtual id of a class and binds it to an inner handle.
func (w *Wrapper) vid(class abi.Class, native abi.Handle) abi.Handle {
	w.nextVid++
	v := abi.MakeHandle(class, w.nextVid)
	w.fwd[v] = native
	return v
}

// peerIn and tagIn translate standard sentinels to inner values.
func (w *Wrapper) peerIn(v int) int {
	switch v {
	case abi.AnySource:
		return w.iAnySource
	case abi.ProcNull:
		return w.iProcNull
	case abi.Root:
		return w.iRoot
	default:
		return v
	}
}

func (w *Wrapper) tagIn(v int) int {
	if v == abi.AnyTag {
		return w.iAnyTag
	}
	return v
}

// statusBack rewrites inner sentinels and error codes into standard form.
func (w *Wrapper) statusBack(st *abi.Status) {
	if st == nil {
		return
	}
	if int(st.Source) == w.iProcNull {
		st.Source = int32(abi.ProcNull)
	}
	if int(st.Tag) == w.iAnyTag {
		st.Tag = int32(abi.AnyTag)
	}
	if st.Error != 0 {
		st.Error = int32(w.cfg.ErrClass(int(st.Error)))
	}
}

// err re-attributes an error, preserving its class.
func (w *Wrapper) err(e error) error {
	if e == nil {
		return nil
	}
	return abi.Errorf(abi.ClassOf(e), "mana", "%v", e)
}

// bump increments a nested counter map.
func bump(m map[abi.Handle]map[int]uint64, comm abi.Handle, peer int) {
	inner, ok := m[comm]
	if !ok {
		inner = make(map[int]uint64)
		m[comm] = inner
	}
	inner[peer]++
}
