package mana

import "time"

// KernelVersion models the one kernel feature the paper blames for MANA's
// small-message overhead: userspace access to the FSGSBASE register.
//
// MANA's split-process design loads the application (upper half) and the
// MPI library (lower half) as two independently-linked programs in one
// address space. Every call from the upper half into the lower half must
// switch the thread-pointer register (fs) to the lower half's TLS and back
// again on return. On kernels before 5.9 the only way to write fs is the
// arch_prctl system call; from 5.9 on, the FSGSBASE instructions do it in
// a few cycles. The paper's testbed (CentOS 7, kernel 3.10) pays the
// syscall price, which is why Figures 2-4 show up-to-17% overhead at small
// message sizes.
type KernelVersion int

// Kernel feature levels.
const (
	// KernelPre5_9 forces fs switches through arch_prctl (the paper's
	// CentOS 7 testbed).
	KernelPre5_9 KernelVersion = iota
	// Kernel5_9Plus writes FSGSBASE directly in userspace.
	Kernel5_9Plus
)

// String names the kernel level.
func (k KernelVersion) String() string {
	if k == Kernel5_9Plus {
		return "linux>=5.9 (userspace FSGSBASE)"
	}
	return "linux<5.9 (arch_prctl syscall)"
}

// switchCost is the cost of one fs-register switch.
func (k KernelVersion) switchCost() time.Duration {
	if k == Kernel5_9Plus {
		return 35 * time.Nanosecond // wrfsbase + pipeline effects
	}
	return 850 * time.Nanosecond // arch_prctl round trip on the paper's kernel
}

// lowerCrossings is the number of upper->lower round trips one wrapped MPI
// call makes: the call itself plus the helper queries MANA's wrappers
// issue against the lower half (communicator lookups, status conversion,
// timing). Calibrated so the pre-5.9 per-call cost (~10 us) reproduces the
// paper's measured small-message overheads (10.9% on alltoall, up to
// 17.2% on bcast/allreduce at 48 ranks).
const lowerCrossings = 5

// CallCost is the split-process context cost of one MPI call: each
// crossing switches fs on entry to the lower half and back on return.
func (k KernelVersion) CallCost() time.Duration {
	return 2 * lowerCrossings * k.switchCost()
}
