// Package types implements the MPI datatype engine shared (as "the math")
// by both simulated MPI implementations: primitive kinds, derived type
// constructors (contiguous, vector, indexed, struct), commit-time
// flattening, and the pack/unpack machinery used by point-to-point
// transfers, collectives and reductions.
//
// Each MPI implementation wraps these types in its own handle
// representation (integer-encoded handles in internal/mpich, pointers in
// internal/openmpi); the engine itself is representation-agnostic. That
// split mirrors Section 4.1 of the paper: datatype *semantics* are common
// to every implementation, while datatype *handles* are part of the
// incompatible ABIs the standard ABI papers over.
//
// In the README's layer diagram the datatype engine is part of the
// shared-runtime row, next to internal/ops.
package types

import (
	"errors"
	"fmt"
)

// Kind identifies a primitive datatype, including the MINLOC/MAXLOC pair
// kinds, which MPI treats as predefined.
type Kind uint8

// Primitive kinds.
const (
	KindInvalid Kind = iota
	KindByte
	KindInt8
	KindUint8
	KindInt16
	KindUint16
	KindInt32
	KindUint32
	KindInt64
	KindUint64
	KindFloat32
	KindFloat64
	KindComplex64
	KindComplex128
	KindBool
	// Pair kinds for MINLOC/MAXLOC reductions.
	KindFloat32Int32
	KindFloat64Int32
	KindInt32Int32
	kindMax // sentinel
)

var kindSizes = [...]int{
	KindInvalid:      0,
	KindByte:         1,
	KindInt8:         1,
	KindUint8:        1,
	KindInt16:        2,
	KindUint16:       2,
	KindInt32:        4,
	KindUint32:       4,
	KindInt64:        8,
	KindUint64:       8,
	KindFloat32:      4,
	KindFloat64:      8,
	KindComplex64:    8,
	KindComplex128:   16,
	KindBool:         1,
	KindFloat32Int32: 8,
	KindFloat64Int32: 12,
	KindInt32Int32:   8,
}

var kindNames = [...]string{
	KindInvalid:      "INVALID",
	KindByte:         "BYTE",
	KindInt8:         "INT8",
	KindUint8:        "UINT8",
	KindInt16:        "INT16",
	KindUint16:       "UINT16",
	KindInt32:        "INT32",
	KindUint32:       "UINT32",
	KindInt64:        "INT64",
	KindUint64:       "UINT64",
	KindFloat32:      "FLOAT32",
	KindFloat64:      "FLOAT64",
	KindComplex64:    "COMPLEX64",
	KindComplex128:   "COMPLEX128",
	KindBool:         "BOOL",
	KindFloat32Int32: "FLOAT32_INT32",
	KindFloat64Int32: "FLOAT64_INT32",
	KindInt32Int32:   "INT32_INT32",
}

// Valid reports whether k names a real primitive kind.
func (k Kind) Valid() bool { return k > KindInvalid && k < kindMax }

// Size returns the primitive's size in bytes.
func (k Kind) Size() int {
	if !k.Valid() {
		return 0
	}
	return kindSizes[k]
}

// String returns the kind's name.
func (k Kind) String() string {
	if !k.Valid() {
		return "INVALID"
	}
	return kindNames[k]
}

// Kinds returns all valid primitive kinds, useful for exhaustive tests.
func Kinds() []Kind {
	out := make([]Kind, 0, int(kindMax)-1)
	for k := KindInvalid + 1; k < kindMax; k++ {
		out = append(out, k)
	}
	return out
}

type nodeKind uint8

const (
	nodePrimitive nodeKind = iota
	nodeContiguous
	nodeVector
	nodeIndexed
	nodeStruct
)

// seg is one contiguous byte range of an element, relative to its start.
type seg struct {
	off, len int
}

// Type is an MPI datatype: either a primitive or a derived layout over
// other types. Types are immutable after Commit.
type Type struct {
	node nodeKind
	prim Kind

	// Derived parameters.
	count, blocklen, stride int // contiguous/vector (stride in elements)
	blocklens, displs       []int
	children                []*Type

	committed bool
	size      int // bytes of actual data per element
	extent    int // span from first to one past last byte, incl. holes
	segs      []seg
}

var errNotCommitted = errors.New("types: datatype not committed")

// Predefined returns the shared committed Type for a primitive kind.
func Predefined(k Kind) *Type {
	if !k.Valid() {
		panic(fmt.Sprintf("types: invalid kind %d", k))
	}
	return predefined[k]
}

var predefined [kindMax]*Type

func init() {
	for k := KindInvalid + 1; k < kindMax; k++ {
		t := &Type{node: nodePrimitive, prim: k}
		if err := t.Commit(); err != nil {
			panic(err)
		}
		predefined[k] = t
	}
}

// Contiguous returns a type of count consecutive elements of inner.
func Contiguous(count int, inner *Type) (*Type, error) {
	if count < 0 {
		return nil, fmt.Errorf("types: contiguous count %d < 0", count)
	}
	if inner == nil {
		return nil, errors.New("types: contiguous inner type is nil")
	}
	return &Type{node: nodeContiguous, count: count, children: []*Type{inner}}, nil
}

// Vector returns count blocks of blocklen elements of inner, with block
// starts stride elements apart (stride measured in inner extents, as in
// MPI_Type_vector).
func Vector(count, blocklen, stride int, inner *Type) (*Type, error) {
	if count < 0 || blocklen < 0 {
		return nil, fmt.Errorf("types: vector count=%d blocklen=%d must be >= 0", count, blocklen)
	}
	if inner == nil {
		return nil, errors.New("types: vector inner type is nil")
	}
	if count > 1 && stride < blocklen {
		return nil, fmt.Errorf("types: vector stride %d < blocklen %d would overlap", stride, blocklen)
	}
	return &Type{node: nodeVector, count: count, blocklen: blocklen, stride: stride,
		children: []*Type{inner}}, nil
}

// Indexed returns blocks of blocklens[i] elements at element displacements
// displs[i] (as in MPI_Type_indexed). Displacements must be non-decreasing
// and non-overlapping.
func Indexed(blocklens, displs []int, inner *Type) (*Type, error) {
	if len(blocklens) != len(displs) {
		return nil, fmt.Errorf("types: indexed blocklens/displs length mismatch %d != %d",
			len(blocklens), len(displs))
	}
	if inner == nil {
		return nil, errors.New("types: indexed inner type is nil")
	}
	end := 0
	for i := range blocklens {
		if blocklens[i] < 0 {
			return nil, fmt.Errorf("types: indexed blocklen[%d] = %d < 0", i, blocklens[i])
		}
		if displs[i] < end {
			return nil, fmt.Errorf("types: indexed block %d at displ %d overlaps previous end %d",
				i, displs[i], end)
		}
		end = displs[i] + blocklens[i]
	}
	return &Type{node: nodeIndexed, blocklens: append([]int(nil), blocklens...),
		displs: append([]int(nil), displs...), children: []*Type{inner}}, nil
}

// Struct returns a type with blocklens[i] elements of typs[i] at byte
// displacement displs[i] (as in MPI_Type_create_struct). Blocks must be
// non-overlapping and in increasing displacement order.
func Struct(blocklens, displs []int, typs []*Type) (*Type, error) {
	if len(blocklens) != len(displs) || len(blocklens) != len(typs) {
		return nil, errors.New("types: struct argument lengths mismatch")
	}
	end := 0
	for i := range typs {
		if typs[i] == nil {
			return nil, fmt.Errorf("types: struct type %d is nil", i)
		}
		if !typs[i].committed {
			return nil, fmt.Errorf("types: struct member %d not committed", i)
		}
		if blocklens[i] < 0 {
			return nil, fmt.Errorf("types: struct blocklen[%d] = %d < 0", i, blocklens[i])
		}
		if displs[i] < end {
			return nil, fmt.Errorf("types: struct block %d at byte %d overlaps previous end %d",
				i, displs[i], end)
		}
		end = displs[i] + blocklens[i]*typs[i].extent
	}
	return &Type{node: nodeStruct, blocklens: append([]int(nil), blocklens...),
		displs: append([]int(nil), displs...), children: append([]*Type(nil), typs...)}, nil
}

// Commit finalizes the layout: computes size/extent and flattens the type
// into contiguous segments. Inner types are committed recursively.
func (t *Type) Commit() error {
	if t.committed {
		return nil
	}
	for _, c := range t.children {
		if err := c.Commit(); err != nil {
			return err
		}
	}
	switch t.node {
	case nodePrimitive:
		t.size = t.prim.Size()
		t.extent = t.size
		t.segs = []seg{{0, t.size}}
	case nodeContiguous:
		in := t.children[0]
		t.size = t.count * in.size
		t.extent = t.count * in.extent
		t.segs = tile(in.segs, t.count, in.extent, 0)
	case nodeVector:
		in := t.children[0]
		t.size = t.count * t.blocklen * in.size
		if t.count > 0 {
			t.extent = ((t.count-1)*t.stride + t.blocklen) * in.extent
		}
		var segs []seg
		for b := 0; b < t.count; b++ {
			segs = append(segs, tile(in.segs, t.blocklen, in.extent, b*t.stride*in.extent)...)
		}
		t.segs = merge(segs)
	case nodeIndexed:
		in := t.children[0]
		for i, bl := range t.blocklens {
			t.size += bl * in.size
			if end := (t.displs[i] + bl) * in.extent; end > t.extent {
				t.extent = end
			}
		}
		var segs []seg
		for i, bl := range t.blocklens {
			segs = append(segs, tile(in.segs, bl, in.extent, t.displs[i]*in.extent)...)
		}
		t.segs = merge(segs)
	case nodeStruct:
		var segs []seg
		for i, bl := range t.blocklens {
			in := t.children[i]
			t.size += bl * in.size
			if end := t.displs[i] + bl*in.extent; end > t.extent {
				t.extent = end
			}
			segs = append(segs, tile(in.segs, bl, in.extent, t.displs[i])...)
		}
		t.segs = merge(segs)
	}
	t.committed = true
	return nil
}

// tile repeats segs count times with the given byte stride and base offset,
// producing a merged segment list.
func tile(segs []seg, count, stride, base int) []seg {
	out := make([]seg, 0, len(segs)*count)
	for i := 0; i < count; i++ {
		off := base + i*stride
		for _, s := range segs {
			out = append(out, seg{s.off + off, s.len})
		}
	}
	return merge(out)
}

// merge coalesces adjacent segments. Inputs are in layout order by
// construction.
func merge(segs []seg) []seg {
	if len(segs) == 0 {
		return segs
	}
	out := segs[:1]
	for _, s := range segs[1:] {
		last := &out[len(out)-1]
		if last.off+last.len == s.off {
			last.len += s.len
		} else {
			out = append(out, s)
		}
	}
	return out
}

// Committed reports whether Commit has run.
func (t *Type) Committed() bool { return t.committed }

// Size returns the number of data bytes in one element.
func (t *Type) Size() int { return t.size }

// Extent returns the byte span of one element including holes; consecutive
// elements in a buffer are extent bytes apart.
func (t *Type) Extent() int { return t.extent }

// Contiguousp reports whether the type has no holes (size == extent), in
// which case pack/unpack degenerate to memcpy.
func (t *Type) Contiguousp() bool { return t.committed && t.size == t.extent }

// PrimKind returns the single primitive kind the type is built from, if it
// is uniform (required for reductions), or ok=false.
func (t *Type) PrimKind() (Kind, bool) {
	if t.node == nodePrimitive {
		return t.prim, true
	}
	var k Kind
	for _, c := range t.children {
		ck, ok := c.PrimKind()
		if !ok {
			return KindInvalid, false
		}
		if k == KindInvalid {
			k = ck
		} else if k != ck {
			return KindInvalid, false
		}
	}
	if k == KindInvalid {
		return KindInvalid, false
	}
	return k, true
}

// Pack gathers count elements starting at src into the contiguous buffer
// dst. src must hold count*Extent() bytes (the final element may omit
// trailing holes); dst must hold count*Size() bytes. Returns bytes written.
func (t *Type) Pack(src []byte, count int, dst []byte) (int, error) {
	if !t.committed {
		return 0, errNotCommitted
	}
	need := t.packedLen(count)
	if len(dst) < need {
		return 0, fmt.Errorf("types: pack dst %d bytes, need %d", len(dst), need)
	}
	if srcNeed := t.bufLen(count); len(src) < srcNeed {
		return 0, fmt.Errorf("types: pack src %d bytes, need %d", len(src), srcNeed)
	}
	if t.Contiguousp() {
		copy(dst[:need], src)
		return need, nil
	}
	n := 0
	for i := 0; i < count; i++ {
		base := i * t.extent
		for _, s := range t.segs {
			copy(dst[n:n+s.len], src[base+s.off:])
			n += s.len
		}
	}
	return n, nil
}

// Unpack scatters count elements from the contiguous buffer src into dst
// laid out with this type. Returns bytes consumed from src.
func (t *Type) Unpack(src []byte, count int, dst []byte) (int, error) {
	if !t.committed {
		return 0, errNotCommitted
	}
	need := t.packedLen(count)
	if len(src) < need {
		return 0, fmt.Errorf("types: unpack src %d bytes, need %d", len(src), need)
	}
	if dstNeed := t.bufLen(count); len(dst) < dstNeed {
		return 0, fmt.Errorf("types: unpack dst %d bytes, need %d", len(dst), dstNeed)
	}
	if t.Contiguousp() {
		copy(dst, src[:need])
		return need, nil
	}
	n := 0
	for i := 0; i < count; i++ {
		base := i * t.extent
		for _, s := range t.segs {
			copy(dst[base+s.off:base+s.off+s.len], src[n:n+s.len])
			n += s.len
		}
	}
	return n, nil
}

// packedLen is the contiguous size of count elements.
func (t *Type) packedLen(count int) int { return count * t.size }

// bufLen is the in-memory span of count elements: full extents for all but
// the last element, which needs only its data bytes' span.
func (t *Type) bufLen(count int) int {
	if count == 0 {
		return 0
	}
	last := 0
	if n := len(t.segs); n > 0 {
		last = t.segs[n-1].off + t.segs[n-1].len
	}
	return (count-1)*t.extent + last
}

// BufLen reports the minimum buffer length holding count elements.
func (t *Type) BufLen(count int) int { return t.bufLen(count) }

// UnpackPartial scatters up to len(src) contiguous bytes into dst laid out
// with this type, stopping when src is exhausted. It handles trailing
// partial elements, which arise when a message carries fewer bytes than the
// receiver's count allows (a legal MPI situation where MPI_Get_count
// reports MPI_UNDEFINED). Returns the number of bytes consumed.
func (t *Type) UnpackPartial(src, dst []byte) (int, error) {
	if !t.committed {
		return 0, errNotCommitted
	}
	if t.size == 0 {
		return 0, nil
	}
	n := 0
	for base := 0; n < len(src); base += t.extent {
		for _, s := range t.segs {
			if n == len(src) {
				return n, nil
			}
			take := s.len
			if rem := len(src) - n; take > rem {
				take = rem
			}
			if base+s.off+take > len(dst) {
				return n, fmt.Errorf("types: UnpackPartial dst too short: need %d bytes",
					base+s.off+take)
			}
			copy(dst[base+s.off:base+s.off+take], src[n:n+take])
			n += take
		}
	}
	return n, nil
}

// String describes the type for diagnostics.
func (t *Type) String() string {
	switch t.node {
	case nodePrimitive:
		return t.prim.String()
	case nodeContiguous:
		return fmt.Sprintf("CONTIG(%d,%s)", t.count, t.children[0])
	case nodeVector:
		return fmt.Sprintf("VECTOR(%d,%d,%d,%s)", t.count, t.blocklen, t.stride, t.children[0])
	case nodeIndexed:
		return fmt.Sprintf("INDEXED(%v,%v,%s)", t.blocklens, t.displs, t.children[0])
	case nodeStruct:
		return fmt.Sprintf("STRUCT(%v,%v,%d types)", t.blocklens, t.displs, len(t.children))
	}
	return "UNKNOWN"
}
