package types

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindSizes(t *testing.T) {
	want := map[Kind]int{
		KindByte: 1, KindInt8: 1, KindUint8: 1, KindInt16: 2, KindUint16: 2,
		KindInt32: 4, KindUint32: 4, KindInt64: 8, KindUint64: 8,
		KindFloat32: 4, KindFloat64: 8, KindComplex64: 8, KindComplex128: 16,
		KindBool: 1, KindFloat32Int32: 8, KindFloat64Int32: 12, KindInt32Int32: 8,
	}
	for k, sz := range want {
		if k.Size() != sz {
			t.Errorf("%v.Size() = %d, want %d", k, k.Size(), sz)
		}
	}
	if KindInvalid.Size() != 0 || KindInvalid.Valid() {
		t.Error("KindInvalid must be size 0 and invalid")
	}
	if len(Kinds()) != len(want) {
		t.Errorf("Kinds() has %d entries, want %d", len(Kinds()), len(want))
	}
}

func TestPredefinedCommitted(t *testing.T) {
	for _, k := range Kinds() {
		p := Predefined(k)
		if !p.Committed() {
			t.Errorf("Predefined(%v) not committed", k)
		}
		if p.Size() != k.Size() || p.Extent() != k.Size() {
			t.Errorf("Predefined(%v) size/extent = %d/%d, want %d", k, p.Size(), p.Extent(), k.Size())
		}
		if !p.Contiguousp() {
			t.Errorf("Predefined(%v) should be contiguous", k)
		}
		pk, ok := p.PrimKind()
		if !ok || pk != k {
			t.Errorf("Predefined(%v).PrimKind() = %v,%v", k, pk, ok)
		}
	}
}

func TestPredefinedInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Predefined(KindInvalid) did not panic")
		}
	}()
	Predefined(KindInvalid)
}

func mustCommit(t *testing.T) func(*Type, error) *Type {
	return func(ty *Type, err error) *Type {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		if err := ty.Commit(); err != nil {
			t.Fatal(err)
		}
		return ty
	}
}

func TestContiguous(t *testing.T) {
	ty := mustCommit(t)(Contiguous(5, Predefined(KindInt32)))
	if ty.Size() != 20 || ty.Extent() != 20 {
		t.Fatalf("size/extent = %d/%d, want 20/20", ty.Size(), ty.Extent())
	}
	if !ty.Contiguousp() {
		t.Fatal("contiguous of primitive should be contiguous")
	}
}

func TestVectorLayout(t *testing.T) {
	// 3 blocks of 2 int32, stride 4 elements: |XX..XX..XX| (X=data, .=hole)
	ty := mustCommit(t)(Vector(3, 2, 4, Predefined(KindInt32)))
	if ty.Size() != 24 {
		t.Fatalf("Size = %d, want 24", ty.Size())
	}
	if ty.Extent() != (2*4+2)*4 {
		t.Fatalf("Extent = %d, want 40", ty.Extent())
	}
	if ty.Contiguousp() {
		t.Fatal("strided vector must not be contiguous")
	}
	src := make([]byte, ty.BufLen(1))
	for i := range src {
		src[i] = byte(i)
	}
	packed := make([]byte, ty.Size())
	n, err := ty.Pack(src, 1, packed)
	if err != nil || n != 24 {
		t.Fatalf("Pack n=%d err=%v", n, err)
	}
	// Block b starts at byte 16*b and contributes 8 bytes.
	want := append(append(src[0:8:8], src[16:24]...), src[32:40]...)
	if !bytes.Equal(packed, want) {
		t.Fatalf("packed = %v, want %v", packed, want)
	}
}

func TestVectorOverlapRejected(t *testing.T) {
	if _, err := Vector(2, 4, 2, Predefined(KindByte)); err == nil {
		t.Fatal("overlapping vector accepted")
	}
}

func TestIndexed(t *testing.T) {
	ty := mustCommit(t)(Indexed([]int{2, 1}, []int{0, 3}, Predefined(KindInt16)))
	if ty.Size() != 6 || ty.Extent() != 8 {
		t.Fatalf("size/extent = %d/%d, want 6/8", ty.Size(), ty.Extent())
	}
	src := []byte{0, 1, 2, 3, 4, 5, 6, 7}
	dst := make([]byte, 6)
	if _, err := ty.Pack(src, 1, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, []byte{0, 1, 2, 3, 6, 7}) {
		t.Fatalf("packed = %v", dst)
	}
}

func TestIndexedOverlapRejected(t *testing.T) {
	if _, err := Indexed([]int{2, 2}, []int{0, 1}, Predefined(KindByte)); err == nil {
		t.Fatal("overlapping indexed accepted")
	}
	if _, err := Indexed([]int{1}, []int{0, 1}, Predefined(KindByte)); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestStruct(t *testing.T) {
	// {int32 at 0, 2*float64 at 8}: size 20, extent 24.
	ty := mustCommit(t)(Struct(
		[]int{1, 2},
		[]int{0, 8},
		[]*Type{Predefined(KindInt32), Predefined(KindFloat64)}))
	if ty.Size() != 20 || ty.Extent() != 24 {
		t.Fatalf("size/extent = %d/%d, want 20/24", ty.Size(), ty.Extent())
	}
	src := make([]byte, 24)
	for i := range src {
		src[i] = byte(i + 1)
	}
	packed := make([]byte, 20)
	if _, err := ty.Pack(src, 1, packed); err != nil {
		t.Fatal(err)
	}
	want := append(append([]byte{}, src[0:4]...), src[8:24]...)
	if !bytes.Equal(packed, want) {
		t.Fatalf("packed = %v, want %v", packed, want)
	}
	// Round-trip.
	out := make([]byte, 24)
	if _, err := ty.Unpack(packed, 1, out); err != nil {
		t.Fatal(err)
	}
	for _, idx := range []int{0, 1, 2, 3, 8, 15, 23} {
		if out[idx] != src[idx] {
			t.Fatalf("unpacked byte %d = %d, want %d", idx, out[idx], src[idx])
		}
	}
	for _, idx := range []int{4, 5, 6, 7} { // holes untouched
		if out[idx] != 0 {
			t.Fatalf("hole byte %d = %d, want 0", idx, out[idx])
		}
	}
}

func TestStructUncommittedMemberRejected(t *testing.T) {
	v, err := Vector(2, 1, 2, Predefined(KindByte))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Struct([]int{1}, []int{0}, []*Type{v}); err == nil {
		t.Fatal("struct with uncommitted member accepted")
	}
}

func TestPackUncommittedFails(t *testing.T) {
	ty, err := Contiguous(2, Predefined(KindByte))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ty.Pack(make([]byte, 2), 1, make([]byte, 2)); err == nil {
		t.Fatal("Pack on uncommitted type succeeded")
	}
}

func TestPackShortBuffers(t *testing.T) {
	ty := Predefined(KindInt64)
	if _, err := ty.Pack(make([]byte, 8), 2, make([]byte, 8)); err == nil {
		t.Fatal("short dst accepted")
	}
	if _, err := ty.Pack(make([]byte, 8), 2, make([]byte, 16)); err == nil {
		t.Fatal("short src accepted")
	}
	if _, err := ty.Unpack(make([]byte, 8), 2, make([]byte, 16)); err == nil {
		t.Fatal("short unpack src accepted")
	}
	if _, err := ty.Unpack(make([]byte, 16), 2, make([]byte, 8)); err == nil {
		t.Fatal("short unpack dst accepted")
	}
}

func TestMultiElementPack(t *testing.T) {
	ty := mustCommit(t)(Vector(2, 1, 2, Predefined(KindInt32)))
	const count = 3
	src := make([]byte, ty.BufLen(count))
	for i := range src {
		src[i] = byte(i)
	}
	packed := make([]byte, count*ty.Size())
	if _, err := ty.Pack(src, count, packed); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, ty.BufLen(count))
	if _, err := ty.Unpack(packed, count, out); err != nil {
		t.Fatal(err)
	}
	// Data positions must round-trip; holes remain zero.
	for e := 0; e < count; e++ {
		base := e * ty.Extent()
		for b := 0; b < 2; b++ {
			for i := 0; i < 4; i++ {
				idx := base + b*8 + i
				if out[idx] != src[idx] {
					t.Fatalf("byte %d = %d, want %d", idx, out[idx], src[idx])
				}
			}
		}
	}
}

func TestNestedDerived(t *testing.T) {
	inner := mustCommit(t)(Vector(2, 1, 2, Predefined(KindInt16))) // 4 data bytes, extent 6
	outer := mustCommit(t)(Contiguous(3, inner))
	if outer.Size() != 12 || outer.Extent() != 18 {
		t.Fatalf("nested size/extent = %d/%d, want 12/18", outer.Size(), outer.Extent())
	}
	pk, ok := outer.PrimKind()
	if !ok || pk != KindInt16 {
		t.Fatalf("PrimKind = %v,%v, want INT16,true", pk, ok)
	}
}

func TestPrimKindMixed(t *testing.T) {
	ty := mustCommit(t)(Struct([]int{1, 1}, []int{0, 4},
		[]*Type{Predefined(KindInt32), Predefined(KindFloat32)}))
	if _, ok := ty.PrimKind(); ok {
		t.Fatal("mixed struct reported a uniform PrimKind")
	}
}

// randomType builds a random committed type over a primitive kind.
func randomType(r *rand.Rand, depth int) *Type {
	kinds := Kinds()
	prim := Predefined(kinds[r.Intn(len(kinds))])
	ty := prim
	for d := 0; d < depth; d++ {
		var next *Type
		var err error
		switch r.Intn(3) {
		case 0:
			next, err = Contiguous(1+r.Intn(4), ty)
		case 1:
			bl := 1 + r.Intn(3)
			next, err = Vector(1+r.Intn(3), bl, bl+r.Intn(3), ty)
		case 2:
			n := 1 + r.Intn(3)
			bls := make([]int, n)
			dps := make([]int, n)
			at := 0
			for i := range bls {
				at += r.Intn(2)
				bls[i] = 1 + r.Intn(2)
				dps[i] = at
				at += bls[i]
			}
			next, err = Indexed(bls, dps, ty)
		}
		if err != nil {
			panic(err)
		}
		ty = next
	}
	if err := ty.Commit(); err != nil {
		panic(err)
	}
	return ty
}

// Property: for any derived type, Pack followed by Unpack restores every
// data byte, and the packed size equals count*Size().
func TestPackUnpackRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	f := func(seed int64, countRaw uint8) bool {
		rr := rand.New(rand.NewSource(seed))
		ty := randomType(rr, 1+rr.Intn(3))
		count := 1 + int(countRaw%4)
		src := make([]byte, ty.BufLen(count))
		r.Read(src)
		packed := make([]byte, count*ty.Size())
		n, err := ty.Pack(src, count, packed)
		if err != nil || n != count*ty.Size() {
			return false
		}
		out := make([]byte, ty.BufLen(count))
		if _, err := ty.Unpack(packed, count, out); err != nil {
			return false
		}
		// Re-pack the unpacked buffer: must equal the first packing.
		packed2 := make([]byte, count*ty.Size())
		if _, err := ty.Pack(out, count, packed2); err != nil {
			return false
		}
		return bytes.Equal(packed, packed2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: size <= extent always, and BufLen(count) <= count*extent.
func TestSizeExtentInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		ty := randomType(rr, 1+rr.Intn(4))
		return ty.Size() <= ty.Extent() && ty.BufLen(3) <= 3*ty.Extent() && ty.BufLen(0) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStringDescriptions(t *testing.T) {
	v := mustCommit(t)(Vector(2, 1, 2, Predefined(KindInt32)))
	for _, ty := range []*Type{Predefined(KindFloat64), v} {
		if ty.String() == "" || ty.String() == "UNKNOWN" {
			t.Errorf("String() for %#v unhelpful: %q", ty, ty.String())
		}
	}
}

func BenchmarkPackVector(b *testing.B) {
	ty, _ := Vector(64, 4, 8, Predefined(KindFloat64))
	if err := ty.Commit(); err != nil {
		b.Fatal(err)
	}
	src := make([]byte, ty.BufLen(1))
	dst := make([]byte, ty.Size())
	b.SetBytes(int64(ty.Size()))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ty.Pack(src, 1, dst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPackContiguous(b *testing.B) {
	ty, _ := Contiguous(1024, Predefined(KindFloat64))
	if err := ty.Commit(); err != nil {
		b.Fatal(err)
	}
	src := make([]byte, ty.BufLen(1))
	dst := make([]byte, ty.Size())
	b.SetBytes(int64(ty.Size()))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ty.Pack(src, 1, dst); err != nil {
			b.Fatal(err)
		}
	}
}
