// Package mukautuva reproduces the Mukautuva ABI compatibility layer
// (Hammond, 2023): a shared library (libmuk.so, the Shim here) that
// implements the proposed standard MPI ABI by translating every handle,
// constant, status object and error code to whichever real MPI
// implementation was selected at runtime through a per-implementation
// wrap adapter (libmpich-wrap.so / libompi-wrap.so, the WrapLib here).
//
// An application (or a checkpointing package like internal/mana) bound to
// the Shim is "compiled once": the same binary state — including
// serialized handles in a checkpoint image — remains meaningful when the
// underlying implementation is swapped, which is exactly the property the
// paper's cross-implementation restart experiment (Figure 6) relies on.
//
// In the README's layer diagram the shim is the standard-ABI entry of
// the bindings-and-shims row (Section 4.2.1).
package mukautuva

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/abi"
	"repro/internal/fabric"
)

// WrapLib is one loaded wrap adapter: the implementation's function table
// plus the extra symbols Mukautuva needs beyond the MPI API itself.
type WrapLib struct {
	// Table is the implementation's native function table.
	Table abi.FuncTable
	// ErrClass maps the implementation's native error code space to
	// standard classes (the MPI_Error_class symbol of the wrap library).
	ErrClass func(code int) abi.ErrClass
	// Version is the implementation's version banner.
	Version string
	// Finalize releases the lower-half library instance.
	Finalize func()
}

// Loader instantiates a wrap adapter for one rank. It is the analog of
// dlopen()ing libmpich-wrap.so inside libmuk.so.
type Loader func(w *fabric.World, rank int) (*WrapLib, error)

var registry = struct {
	sync.RWMutex
	m map[string]Loader
}{m: make(map[string]Loader)}

// Register installs a wrap adapter under an implementation name. The
// adapters in this package self-register in init(); external
// implementations may register their own.
func Register(name string, l Loader) {
	if name == "" || l == nil {
		panic("mukautuva: empty registration")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[name]; dup {
		panic(fmt.Sprintf("mukautuva: duplicate wrap adapter %q", name))
	}
	registry.m[name] = l
}

// Implementations lists the registered wrap adapters, sorted.
func Implementations() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, 0, len(registry.m))
	for name := range registry.m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Config tunes the shim's virtual-time cost model. Every translated call
// charges PerCall to the rank's clock, reproducing the per-call overhead
// the paper measures for the Mukautuva layer.
type Config struct {
	// PerCall is the translation cost charged per MPI call.
	PerCall time.Duration
}

// DefaultConfig matches the calibration used for the paper figures.
func DefaultConfig() Config {
	return Config{PerCall: 180 * time.Nanosecond}
}

// LoadLib instantiates a wrap adapter by name without the standard-ABI
// shim on top. Alternative translators (internal/wi4mpi's preload mode)
// build their own front end over the same adapters.
func LoadLib(name string, w *fabric.World, rank int) (*WrapLib, error) {
	registry.RLock()
	loader, ok := registry.m[name]
	registry.RUnlock()
	if !ok {
		return nil, abi.Errorf(abi.ErrArg, "mukautuva",
			"no wrap adapter for implementation %q (have %v)", name, Implementations())
	}
	return loader(w, rank)
}

// Load selects an implementation by name and builds the standard-ABI shim
// over it — the runtime moment the paper's Figure 1 labels "libmuk.so
// dynamically detects the MPI library and loads libmpich-wrap.so".
func Load(name string, w *fabric.World, rank int, cfg Config) (*Shim, error) {
	lib, err := LoadLib(name, w, rank)
	if err != nil {
		return nil, err
	}
	return newShim(name, lib, w.Endpoint(rank), cfg), nil
}
