package mukautuva

import (
	"repro/internal/abi"
	"repro/internal/fabric"
	"repro/internal/mpich"
	"repro/internal/ops"
	"repro/internal/types"
)

// wrap_mpich.go is the libmpich-wrap.so analog: it knows how to
// instantiate the MPICH lower half and exposes the extra translation
// symbols the shim needs (error-class mapping, version banner). In the
// future MPI-5 world the paper anticipates, each implementation ships
// this file itself.

func init() {
	Register("mpich", func(w *fabric.World, rank int) (*WrapLib, error) {
		p := mpich.Init(w, rank)
		return &WrapLib{
			Table:    mpich.Bind(p),
			ErrClass: mpich.ClassOfCode,
			Version:  mpich.Version,
			Finalize: func() { p.Finalize() },
		}, nil
	})
}

// kindsAndOpsSyms enumerates the predefined datatype and operator symbols
// that the shim's translation tables must cover.
func kindsAndOpsSyms() []abi.Sym {
	var out []abi.Sym
	for _, k := range types.Kinds() {
		out = append(out, abi.SymForKind(k))
	}
	for _, op := range ops.Ops() {
		out = append(out, abi.SymForOp(op))
	}
	return out
}
