package mukautuva

import (
	"repro/internal/fabric"
	"repro/internal/stdabi"
)

// wrap_stdabi.go is the wrap adapter for the standard-ABI-native
// implementation (see wrap_mpich.go for the scheme). It is the smallest
// of the three: stdabi's native vocabulary already matches what the shim
// speaks, so the adapter's translation symbols are identities — loading
// it demonstrates that a standard-ABI implementation slots into the
// compatibility layer for free, which is the future the paper's Section 6
// anticipates where libmuk.so becomes unnecessary.
func init() {
	Register("stdabi", func(w *fabric.World, rank int) (*WrapLib, error) {
		p := stdabi.Init(w, rank)
		return &WrapLib{
			Table:    stdabi.Bind(p),
			ErrClass: stdabi.ClassOfCode,
			Version:  stdabi.Version,
			Finalize: func() { p.Finalize() },
		}, nil
	})
}
