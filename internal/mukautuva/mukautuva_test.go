package mukautuva

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/abi"
	"repro/internal/fabric"
	"repro/internal/mpich"
	"repro/internal/openmpi"
	"repro/internal/ops"
	"repro/internal/simnet"
	"repro/internal/stdabi"
	"repro/internal/types"
)

// runStd runs fn as an SPMD program over the standard ABI on the given
// implementation.
func runStd(t *testing.T, impl string, n int, fn func(s *Shim, rank int) error) {
	t.Helper()
	w, err := fabric.NewWorld(simnet.SingleNode(n))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			s, err := Load(impl, w, r, DefaultConfig())
			if err != nil {
				errs <- err
				w.Close()
				return
			}
			if err := fn(s, r); err != nil {
				errs <- fmt.Errorf("rank %d: %w", r, err)
				w.Close()
			}
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("SPMD test on %s timed out", impl)
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// bothImpls runs the same standard-ABI program over both implementations —
// the "compile once, run everywhere" property under test.
func bothImpls(t *testing.T, n int, fn func(s *Shim, rank int) error) {
	t.Helper()
	for _, impl := range Implementations() {
		t.Run(impl, func(t *testing.T) { runStd(t, impl, n, fn) })
	}
}

func TestRegistryHasAllImplementations(t *testing.T) {
	impls := Implementations()
	if len(impls) != 3 || impls[0] != "mpich" || impls[1] != "openmpi" || impls[2] != "stdabi" {
		t.Fatalf("Implementations() = %v", impls)
	}
}

func TestLoadUnknownImplementation(t *testing.T) {
	w, err := fabric.NewWorld(simnet.SingleNode(1))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := Load("lam-mpi", w, 0, DefaultConfig()); err == nil {
		t.Fatal("loading an unregistered implementation succeeded")
	} else if abi.ClassOf(err) != abi.ErrArg {
		t.Fatalf("error class = %v, want ErrArg", abi.ClassOf(err))
	}
}

func TestLookupReturnsStandardConstants(t *testing.T) {
	bothImpls(t, 1, func(s *Shim, rank int) error {
		if s.Lookup(abi.SymCommWorld) != abi.CommWorld {
			return fmt.Errorf("Lookup(CommWorld) = %v, not the standard value", s.Lookup(abi.SymCommWorld))
		}
		if s.LookupInt(abi.IntAnySource) != abi.AnySource {
			return fmt.Errorf("LookupInt(AnySource) = %d", s.LookupInt(abi.IntAnySource))
		}
		if s.Lookup(abi.SymForKind(types.KindFloat64)) != abi.TypeFloat64 {
			return fmt.Errorf("type constant not standard")
		}
		return nil
	})
}

// The heart of the matter: identical application code, standard constants
// only, running over two ABIs that disagree about everything.
func TestSameProgramBothImplementations(t *testing.T) {
	bothImpls(t, 4, func(s *Shim, rank int) error {
		world := s.Lookup(abi.SymCommWorld)
		f64 := s.Lookup(abi.SymForKind(types.KindFloat64))
		sum := s.Lookup(abi.SymForOp(ops.OpSum))
		n, err := s.CommSize(world)
		if err != nil {
			return err
		}
		me, err := s.CommRank(world)
		if err != nil {
			return err
		}
		// Ring p2p with standard wildcards.
		right := (me + 1) % n
		rb := make([]byte, 8)
		req, err := s.Irecv(rb, 1, f64, abi.AnySource, abi.AnyTag, world)
		if err != nil {
			return err
		}
		if err := s.Send(abi.Float64Bytes([]float64{float64(me)}), 1, f64, right, 11, world); err != nil {
			return err
		}
		var st abi.Status
		if err := s.Wait(req, &st); err != nil {
			return err
		}
		left := (me - 1 + n) % n
		if got := abi.Float64sOf(rb)[0]; got != float64(left) {
			return fmt.Errorf("ring got %v, want %d", got, left)
		}
		if st.Source != int32(left) || st.Tag != 11 || st.CountBytes != 8 {
			return fmt.Errorf("status = %+v", st)
		}
		// Allreduce.
		out := make([]byte, 8)
		if err := s.Allreduce(abi.Float64Bytes([]float64{1}), out, 1, f64, sum, world); err != nil {
			return err
		}
		if got := abi.Float64sOf(out)[0]; got != float64(n) {
			return fmt.Errorf("allreduce = %v, want %d", got, n)
		}
		// Send to PROC_NULL via the standard sentinel.
		if err := s.Send(nil, 0, f64, abi.ProcNull, 0, world); err != nil {
			return err
		}
		var pn abi.Status
		if err := s.Recv(nil, 0, f64, abi.ProcNull, 0, world, &pn); err != nil {
			return err
		}
		if pn.Source != int32(abi.ProcNull) {
			return fmt.Errorf("PROC_NULL status source = %d, want standard %d", pn.Source, abi.ProcNull)
		}
		return nil
	})
}

func TestErrorClassTranslation(t *testing.T) {
	bothImpls(t, 1, func(s *Shim, rank int) error {
		world := s.Lookup(abi.SymCommWorld)
		f64 := s.Lookup(abi.SymForKind(types.KindFloat64))
		// Invalid rank: both implementations return their own code; the shim
		// must present the standard class.
		err := s.Send(nil, 0, f64, 99, 0, world)
		if abi.ClassOf(err) != abi.ErrRank {
			return fmt.Errorf("bad-rank error class = %v (%v)", abi.ClassOf(err), err)
		}
		// Invalid communicator handle.
		err = s.Barrier(abi.MakeHandle(abi.ClassComm, 0x99999))
		if abi.ClassOf(err) != abi.ErrComm {
			return fmt.Errorf("bad-comm error class = %v (%v)", abi.ClassOf(err), err)
		}
		return nil
	})
}

func TestTruncationErrorAndStatusClass(t *testing.T) {
	bothImpls(t, 2, func(s *Shim, rank int) error {
		world := s.Lookup(abi.SymCommWorld)
		bt := s.Lookup(abi.SymForKind(types.KindByte))
		if rank == 0 {
			return s.Send(make([]byte, 64), 64, bt, 1, 0, world)
		}
		var st abi.Status
		err := s.Recv(make([]byte, 8), 8, bt, 0, 0, world, &st)
		if abi.ClassOf(err) != abi.ErrTruncate {
			return fmt.Errorf("truncation class = %v", abi.ClassOf(err))
		}
		// The in-status error must be the STANDARD class value, not the
		// implementation's code.
		if st.Error != int32(abi.ErrTruncate) {
			return fmt.Errorf("status error = %d, want standard %d", st.Error, abi.ErrTruncate)
		}
		return nil
	})
}

func TestDynamicHandlesAcrossShim(t *testing.T) {
	bothImpls(t, 4, func(s *Shim, rank int) error {
		world := s.Lookup(abi.SymCommWorld)
		i64 := s.Lookup(abi.SymForKind(types.KindInt64))
		sum := s.Lookup(abi.SymForOp(ops.OpSum))
		// Split: returned handle must be a standard-encoded dynamic handle.
		sub, err := s.CommSplit(world, rank%2, rank)
		if err != nil {
			return err
		}
		if sub.HandleClass() != abi.ClassComm || sub.Predefined() {
			return fmt.Errorf("split handle %v not a dynamic standard handle", sub)
		}
		rb := make([]byte, 8)
		if err := s.Allreduce(abi.Int64Bytes([]int64{int64(rank)}), rb, 1, i64, sum, sub); err != nil {
			return err
		}
		want := int64(0 + 2)
		if rank%2 == 1 {
			want = 1 + 3
		}
		if got := abi.Int64sOf(rb)[0]; got != want {
			return fmt.Errorf("split allreduce = %d, want %d", got, want)
		}
		if err := s.CommFree(sub); err != nil {
			return err
		}
		// Derived datatype round trip through the shim.
		vec, err := s.TypeVector(2, 1, 2, i64)
		if err != nil {
			return err
		}
		if err := s.TypeCommit(vec); err != nil {
			return err
		}
		sz, err := s.TypeSize(vec)
		if err != nil || sz != 16 {
			return fmt.Errorf("TypeSize = %d err=%v", sz, err)
		}
		ext, err := s.TypeExtent(vec)
		if err != nil || ext != 24 {
			return fmt.Errorf("TypeExtent = %d err=%v", ext, err)
		}
		return s.TypeFree(vec)
	})
}

func TestUndefinedTranslatedBack(t *testing.T) {
	bothImpls(t, 2, func(s *Shim, rank int) error {
		world := s.Lookup(abi.SymCommWorld)
		g, err := s.CommGroup(world)
		if err != nil {
			return err
		}
		other := 1 - rank
		sub, err := s.GroupIncl(g, []int{other})
		if err != nil {
			return err
		}
		// I am not in sub: GroupRank must be the STANDARD Undefined.
		r, err := s.GroupRank(sub)
		if err != nil {
			return err
		}
		if r != abi.Undefined {
			return fmt.Errorf("GroupRank = %d, want standard Undefined %d", r, abi.Undefined)
		}
		// Translate a rank that does not exist in the target group.
		tr, err := s.GroupTranslateRanks(g, []int{rank}, sub)
		if err != nil {
			return err
		}
		if tr[0] != abi.Undefined {
			return fmt.Errorf("translate = %d, want Undefined", tr[0])
		}
		return nil
	})
}

func TestCommSplitUndefinedColor(t *testing.T) {
	bothImpls(t, 2, func(s *Shim, rank int) error {
		world := s.Lookup(abi.SymCommWorld)
		color := 0
		if rank == 1 {
			color = abi.Undefined
		}
		sub, err := s.CommSplit(world, color, 0)
		if err != nil {
			return err
		}
		if rank == 1 && sub != abi.CommNull {
			return fmt.Errorf("undefined color returned %v, want standard CommNull", sub)
		}
		if rank == 0 && sub == abi.CommNull {
			return fmt.Errorf("member got CommNull")
		}
		return nil
	})
}

func TestShimChargesVirtualTime(t *testing.T) {
	w, err := fabric.NewWorld(simnet.SingleNode(1))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	cfg := Config{PerCall: time.Microsecond}
	s, err := Load("mpich", w, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := w.Endpoint(0).Clock().Now()
	for i := 0; i < 10; i++ {
		if _, err := s.CommRank(s.Lookup(abi.SymCommWorld)); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := w.Endpoint(0).Clock().Now().Sub(before)
	if elapsed < 10*time.Microsecond {
		t.Fatalf("10 shim calls advanced only %v; per-call overhead not charged", elapsed)
	}
}

func TestUserOpThroughShim(t *testing.T) {
	if err := ops.RegisterUser("muk.test.sumsq", true,
		func(acc, in []byte, k types.Kind, count int) {
			_ = ops.Apply(ops.OpSum, k, acc, in, count)
		}); err != nil {
		t.Fatal(err)
	}
	bothImpls(t, 2, func(s *Shim, rank int) error {
		world := s.Lookup(abi.SymCommWorld)
		i64 := s.Lookup(abi.SymForKind(types.KindInt64))
		op, err := s.OpCreate("muk.test.sumsq", true)
		if err != nil {
			return err
		}
		rb := make([]byte, 8)
		if err := s.Allreduce(abi.Int64Bytes([]int64{2}), rb, 1, i64, op, world); err != nil {
			return err
		}
		if got := abi.Int64sOf(rb)[0]; got != 4 {
			return fmt.Errorf("user op allreduce = %d, want 4", got)
		}
		return s.OpFree(op)
	})
}

func TestFinalize(t *testing.T) {
	w, err := fabric.NewWorld(simnet.SingleNode(1))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	s, err := Load("openmpi", w, 0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s.Version() == "" || s.Name() != "openmpi" {
		t.Fatalf("identity wrong: %q %q", s.Version(), s.Name())
	}
	s.Finalize()
	s.Finalize() // idempotent
}

// TestErrClassRoundTripAllImpls is the cross-ABI error-class
// translation table, pinned bit-exactly: for every standard error class
// — the two new ULFM MPIX classes included — the class maps to each
// implementation's own native code (standard -> native), and each
// implementation's wrap adapter maps that code back to the standard
// class (native -> standard, the direction every translated status and
// return value takes through the shim). The native numbering is pinned
// on purpose: these values ARE the ABI divergence (MPICH says
// proc-failed=71 where Open MPI says 54 and the standard ABI says 17),
// and a silent renumbering would invalidate every cross-implementation
// claim the fault-tolerance cells make.
func TestErrClassRoundTripAllImpls(t *testing.T) {
	classes := []abi.ErrClass{
		abi.ErrSuccess, abi.ErrBuffer, abi.ErrCount, abi.ErrType, abi.ErrTag,
		abi.ErrComm, abi.ErrRank, abi.ErrRequest, abi.ErrRoot, abi.ErrGroup,
		abi.ErrOp, abi.ErrArg, abi.ErrTruncate, abi.ErrUnsupported,
		abi.ErrPending, abi.ErrIntern, abi.ErrOther,
		abi.ErrProcFailed, abi.ErrRevoked,
	}
	// Pinned native codes per implementation, in `classes` order. -1
	// marks a class the implementation's table cannot express: it
	// collapses to the impl's ErrOther on the way down and therefore
	// does not round-trip (exactly what a real errhandler sees).
	native := map[string][]int{
		"mpich":   {0, 1, 2, 3, 4, 5, 6, 19, 7, 8, 9, 12, 14, -1, 18, 16, 15, 71, 72},
		"openmpi": {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 13, 15, -1, -1, 17, 16, 54, 56},
		"stdabi":  {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18},
	}
	toNative := map[string]func(abi.ErrClass) int{
		"mpich":   mpich.CodeOfClass,
		"openmpi": openmpi.CodeOfClass,
		"stdabi":  stdabi.CodeOfClass,
	}
	otherCode := map[string]int{"mpich": 15, "openmpi": 16, "stdabi": 16}

	for _, impl := range []string{"mpich", "openmpi", "stdabi"} {
		w, err := fabric.NewWorld(simnet.SingleNode(1))
		if err != nil {
			t.Fatal(err)
		}
		lib, err := LoadLib(impl, w, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i, class := range classes {
			want := native[impl][i]
			got := toNative[impl](class)
			if want == -1 {
				// Inexpressible class: collapses to the native ErrOther.
				if got != otherCode[impl] {
					t.Errorf("%s: CodeOfClass(%v) = %d, want native ErrOther %d",
						impl, class, got, otherCode[impl])
				}
				continue
			}
			if got != want {
				t.Errorf("%s: CodeOfClass(%v) = %d, want %d (pinned native code)",
					impl, class, got, want)
			}
			// The shim's upward direction: native code -> standard class,
			// through the wrap adapter's MPI_Error_class symbol.
			if back := lib.ErrClass(want); back != class {
				t.Errorf("%s: ErrClass(%d) = %v, want %v (impl->standard->impl must be exact)",
					impl, want, back, class)
			}
		}
		w.Close()
	}

	// The MPIX numbering must actually diverge across the native tables —
	// if two implementations ever agreed, the cell would no longer test a
	// translation.
	if mpich.ErrProcFailed == openmpi.ErrProcFailed ||
		mpich.ErrProcFailed == stdabi.ErrProcFailed ||
		openmpi.ErrProcFailed == stdabi.ErrProcFailed {
		t.Error("proc-failed codes coincide across implementations; the translation cells test nothing")
	}
	if mpich.ErrRevoked == openmpi.ErrRevoked ||
		mpich.ErrRevoked == stdabi.ErrRevoked ||
		openmpi.ErrRevoked == stdabi.ErrRevoked {
		t.Error("revoked codes coincide across implementations; the translation cells test nothing")
	}
}
