package mukautuva

import (
	"repro/internal/fabric"
	"repro/internal/openmpi"
)

// wrap_openmpi.go is the libompi-wrap.so analog (see wrap_mpich.go).

func init() {
	Register("openmpi", func(w *fabric.World, rank int) (*WrapLib, error) {
		p := openmpi.Init(w, rank)
		return &WrapLib{
			Table:    openmpi.Bind(p),
			ErrClass: openmpi.ClassOfCode,
			Version:  openmpi.Version,
			Finalize: func() { p.Finalize() },
		}, nil
	})
}
