package mukautuva

import (
	"repro/internal/abi"
	"repro/internal/fabric"
	"repro/internal/simnet"
)

// Shim is the libmuk.so analog: an abi.FuncTable whose handle space,
// constants, status conventions and error classes are the standard ABI's,
// implemented by translating every call onto a wrap adapter.
//
// Translation state is a pair of handle maps (standard->native built
// eagerly for the predefined constants, extended lazily for runtime
// objects) plus the implementation's wildcard/sentinel values captured at
// load time. The per-call translation work is charged to the rank's
// virtual clock, making the shim's overhead visible to the latency
// harness exactly as the real library's overhead is visible to OSU.
type Shim struct {
	name string
	lib  *WrapLib
	cfg  Config

	clock *simnet.Clock

	fwd  map[abi.Handle]abi.Handle // standard -> native
	next uint64

	// Native integer constants captured at load.
	anySource, anyTag, procNull, root, undefined int

	// Native null handles, for detecting null results.
	commNull, groupNull, typeNull, opNull, reqNull abi.Handle

	finalized bool
}

var _ abi.FuncTable = (*Shim)(nil)

// newShim builds the translation tables for a freshly loaded wrap adapter.
func newShim(name string, lib *WrapLib, ep *fabric.Endpoint, cfg Config) *Shim {
	s := &Shim{
		name:  name,
		lib:   lib,
		cfg:   cfg,
		clock: ep.Clock(),
		fwd:   make(map[abi.Handle]abi.Handle),
		next:  abi.PredefinedLimit,
	}
	inner := lib.Table
	// Predefined object constants: standard value -> native value.
	syms := []abi.Sym{
		abi.SymCommWorld, abi.SymCommSelf, abi.SymCommNull,
		abi.SymGroupNull, abi.SymGroupEmpty, abi.SymTypeNull,
		abi.SymOpNull, abi.SymRequestNull,
	}
	for _, k := range kindsAndOpsSyms() {
		syms = append(syms, k)
	}
	for _, sym := range syms {
		s.fwd[abi.StdLookup(sym)] = inner.Lookup(sym)
	}
	s.commNull = inner.Lookup(abi.SymCommNull)
	s.groupNull = inner.Lookup(abi.SymGroupNull)
	s.typeNull = inner.Lookup(abi.SymTypeNull)
	s.opNull = inner.Lookup(abi.SymOpNull)
	s.reqNull = inner.Lookup(abi.SymRequestNull)
	s.anySource = inner.LookupInt(abi.IntAnySource)
	s.anyTag = inner.LookupInt(abi.IntAnyTag)
	s.procNull = inner.LookupInt(abi.IntProcNull)
	s.root = inner.LookupInt(abi.IntRoot)
	s.undefined = inner.LookupInt(abi.IntUndefined)
	return s
}

// Name returns the loaded implementation's registry name.
func (s *Shim) Name() string { return s.name }

// Version returns the lower library's version banner.
func (s *Shim) Version() string { return s.lib.Version }

// Finalize releases the lower half. The shim becomes unusable.
func (s *Shim) Finalize() {
	if s.finalized {
		return
	}
	s.finalized = true
	if s.lib.Finalize != nil {
		s.lib.Finalize()
	}
}

// charge bills the per-call translation cost to virtual time.
func (s *Shim) charge() { s.clock.Advance(s.cfg.PerCall) }

// in translates a standard handle to the native one.
func (s *Shim) in(h abi.Handle) abi.Handle {
	if n, ok := s.fwd[h]; ok {
		return n
	}
	// Unknown handle: hand the class's native null to the implementation
	// so it reports the error in its own vocabulary.
	switch h.HandleClass() {
	case abi.ClassComm:
		return s.commNull
	case abi.ClassGroup:
		return s.groupNull
	case abi.ClassType:
		return s.typeNull
	case abi.ClassOp:
		return s.opNull
	case abi.ClassRequest:
		return s.reqNull
	}
	return s.typeNull
}

// adopt allocates a fresh standard handle for a native result. Native null
// results collapse to the standard null of the class.
func (s *Shim) adopt(class abi.Class, native abi.Handle, nativeNull abi.Handle) abi.Handle {
	if native == nativeNull {
		return abi.StdLookup(nullSymOf(class))
	}
	s.next++
	std := abi.MakeHandle(class, s.next)
	s.fwd[std] = native
	return std
}

func nullSymOf(class abi.Class) abi.Sym {
	switch class {
	case abi.ClassComm:
		return abi.SymCommNull
	case abi.ClassGroup:
		return abi.SymGroupNull
	case abi.ClassType:
		return abi.SymTypeNull
	case abi.ClassOp:
		return abi.SymOpNull
	case abi.ClassRequest:
		return abi.SymRequestNull
	}
	return abi.SymTypeNull
}

// release drops a standard handle's mapping (after frees and completed
// requests).
func (s *Shim) release(h abi.Handle) { delete(s.fwd, h) }

// peerIn translates rank arguments' standard sentinels to native values.
func (s *Shim) peerIn(v int) int {
	switch v {
	case abi.AnySource:
		return s.anySource
	case abi.ProcNull:
		return s.procNull
	case abi.Root:
		return s.root
	default:
		return v
	}
}

// tagIn translates tag wildcards.
func (s *Shim) tagIn(v int) int {
	if v == abi.AnyTag {
		return s.anyTag
	}
	return v
}

// statusBack rewrites native sentinel values in a returned status into
// standard ones. Regular communicator ranks and tags pass through; native
// error codes are reclassified through the wrap library's MPI_Error_class.
func (s *Shim) statusBack(st *abi.Status) {
	if st == nil {
		return
	}
	if int(st.Source) == s.procNull {
		st.Source = int32(abi.ProcNull)
	}
	if int(st.Tag) == s.anyTag {
		st.Tag = int32(abi.AnyTag)
	}
	if st.Error != 0 {
		st.Error = int32(s.lib.ErrClass(int(st.Error)))
	}
}

// err re-attributes an error from the wrap layer, keeping its class.
func (s *Shim) err(e error) error {
	if e == nil {
		return nil
	}
	return abi.Errorf(abi.ClassOf(e), "mukautuva("+s.name+")", "%v", e)
}

// countBack translates native MPI_UNDEFINED results (GetCount, GroupRank,
// translate-ranks) to the standard value.
func (s *Shim) countBack(v int) int {
	if v == s.undefined {
		return abi.Undefined
	}
	return v
}

// --- abi.FuncTable ---

// ImplName names the underlying implementation.
func (s *Shim) ImplName() string { return s.name }

// Lookup resolves constants to the STANDARD values — this is the whole
// point: applications bound to the shim embed only standard constants.
func (s *Shim) Lookup(sym abi.Sym) abi.Handle { return abi.StdLookup(sym) }

// LookupInt resolves integer constants to standard values.
func (s *Shim) LookupInt(sym abi.IntSym) int { return abi.StdLookupInt(sym) }

func (s *Shim) Send(buf []byte, count int, dtype abi.Handle, dest, tag int, comm abi.Handle) error {
	s.charge()
	return s.err(s.lib.Table.Send(buf, count, s.in(dtype), s.peerIn(dest), tag, s.in(comm)))
}

func (s *Shim) Recv(buf []byte, count int, dtype abi.Handle, source, tag int, comm abi.Handle, st *abi.Status) error {
	s.charge()
	err := s.lib.Table.Recv(buf, count, s.in(dtype), s.peerIn(source), s.tagIn(tag), s.in(comm), st)
	s.statusBack(st)
	return s.err(err)
}

func (s *Shim) Isend(buf []byte, count int, dtype abi.Handle, dest, tag int, comm abi.Handle) (abi.Handle, error) {
	s.charge()
	r, err := s.lib.Table.Isend(buf, count, s.in(dtype), s.peerIn(dest), tag, s.in(comm))
	if err != nil {
		return abi.RequestNull, s.err(err)
	}
	return s.adopt(abi.ClassRequest, r, s.reqNull), nil
}

func (s *Shim) Irecv(buf []byte, count int, dtype abi.Handle, source, tag int, comm abi.Handle) (abi.Handle, error) {
	s.charge()
	r, err := s.lib.Table.Irecv(buf, count, s.in(dtype), s.peerIn(source), s.tagIn(tag), s.in(comm))
	if err != nil {
		return abi.RequestNull, s.err(err)
	}
	return s.adopt(abi.ClassRequest, r, s.reqNull), nil
}

func (s *Shim) Wait(req abi.Handle, st *abi.Status) error {
	s.charge()
	err := s.lib.Table.Wait(s.in(req), st)
	s.statusBack(st)
	s.release(req)
	return s.err(err)
}

func (s *Shim) Test(req abi.Handle, st *abi.Status) (bool, error) {
	s.charge()
	done, err := s.lib.Table.Test(s.in(req), st)
	if done {
		s.statusBack(st)
		s.release(req)
	}
	return done, s.err(err)
}

func (s *Shim) Waitall(reqs []abi.Handle, sts []abi.Status) error {
	s.charge()
	native := make([]abi.Handle, len(reqs))
	for i, r := range reqs {
		native[i] = s.in(r)
	}
	err := s.lib.Table.Waitall(native, sts)
	for i := range sts {
		s.statusBack(&sts[i])
	}
	for _, r := range reqs {
		s.release(r)
	}
	return s.err(err)
}

func (s *Shim) Sendrecv(sendbuf []byte, scount int, stype abi.Handle, dest, stag int,
	recvbuf []byte, rcount int, rtype abi.Handle, source, rtag int,
	comm abi.Handle, st *abi.Status) error {
	s.charge()
	err := s.lib.Table.Sendrecv(sendbuf, scount, s.in(stype), s.peerIn(dest), stag,
		recvbuf, rcount, s.in(rtype), s.peerIn(source), s.tagIn(rtag), s.in(comm), st)
	s.statusBack(st)
	return s.err(err)
}

func (s *Shim) Probe(source, tag int, comm abi.Handle, st *abi.Status) error {
	s.charge()
	err := s.lib.Table.Probe(s.peerIn(source), s.tagIn(tag), s.in(comm), st)
	s.statusBack(st)
	return s.err(err)
}

func (s *Shim) Iprobe(source, tag int, comm abi.Handle, st *abi.Status) (bool, error) {
	s.charge()
	found, err := s.lib.Table.Iprobe(s.peerIn(source), s.tagIn(tag), s.in(comm), st)
	if found {
		s.statusBack(st)
	}
	return found, s.err(err)
}

func (s *Shim) Barrier(comm abi.Handle) error {
	s.charge()
	return s.err(s.lib.Table.Barrier(s.in(comm)))
}

func (s *Shim) Bcast(buf []byte, count int, dtype abi.Handle, root int, comm abi.Handle) error {
	s.charge()
	return s.err(s.lib.Table.Bcast(buf, count, s.in(dtype), root, s.in(comm)))
}

func (s *Shim) Reduce(sendbuf, recvbuf []byte, count int, dtype, op abi.Handle, root int, comm abi.Handle) error {
	s.charge()
	return s.err(s.lib.Table.Reduce(sendbuf, recvbuf, count, s.in(dtype), s.in(op), root, s.in(comm)))
}

func (s *Shim) Allreduce(sendbuf, recvbuf []byte, count int, dtype, op abi.Handle, comm abi.Handle) error {
	s.charge()
	return s.err(s.lib.Table.Allreduce(sendbuf, recvbuf, count, s.in(dtype), s.in(op), s.in(comm)))
}

func (s *Shim) Gather(sendbuf []byte, scount int, stype abi.Handle,
	recvbuf []byte, rcount int, rtype abi.Handle, root int, comm abi.Handle) error {
	s.charge()
	return s.err(s.lib.Table.Gather(sendbuf, scount, s.in(stype),
		recvbuf, rcount, s.in(rtype), root, s.in(comm)))
}

func (s *Shim) Allgather(sendbuf []byte, scount int, stype abi.Handle,
	recvbuf []byte, rcount int, rtype abi.Handle, comm abi.Handle) error {
	s.charge()
	return s.err(s.lib.Table.Allgather(sendbuf, scount, s.in(stype),
		recvbuf, rcount, s.in(rtype), s.in(comm)))
}

func (s *Shim) Scatter(sendbuf []byte, scount int, stype abi.Handle,
	recvbuf []byte, rcount int, rtype abi.Handle, root int, comm abi.Handle) error {
	s.charge()
	return s.err(s.lib.Table.Scatter(sendbuf, scount, s.in(stype),
		recvbuf, rcount, s.in(rtype), root, s.in(comm)))
}

func (s *Shim) Alltoall(sendbuf []byte, scount int, stype abi.Handle,
	recvbuf []byte, rcount int, rtype abi.Handle, comm abi.Handle) error {
	s.charge()
	return s.err(s.lib.Table.Alltoall(sendbuf, scount, s.in(stype),
		recvbuf, rcount, s.in(rtype), s.in(comm)))
}

func (s *Shim) CommSize(comm abi.Handle) (int, error) {
	s.charge()
	n, err := s.lib.Table.CommSize(s.in(comm))
	return n, s.err(err)
}

func (s *Shim) CommRank(comm abi.Handle) (int, error) {
	s.charge()
	r, err := s.lib.Table.CommRank(s.in(comm))
	return r, s.err(err)
}

func (s *Shim) CommDup(comm abi.Handle) (abi.Handle, error) {
	s.charge()
	n, err := s.lib.Table.CommDup(s.in(comm))
	if err != nil {
		return abi.CommNull, s.err(err)
	}
	return s.adopt(abi.ClassComm, n, s.commNull), nil
}

func (s *Shim) CommSplit(comm abi.Handle, color, key int) (abi.Handle, error) {
	s.charge()
	nativeColor := color
	if color == abi.Undefined {
		nativeColor = s.undefined
	}
	n, err := s.lib.Table.CommSplit(s.in(comm), nativeColor, key)
	if err != nil {
		return abi.CommNull, s.err(err)
	}
	return s.adopt(abi.ClassComm, n, s.commNull), nil
}

func (s *Shim) CommCreate(comm, group abi.Handle) (abi.Handle, error) {
	s.charge()
	n, err := s.lib.Table.CommCreate(s.in(comm), s.in(group))
	if err != nil {
		return abi.CommNull, s.err(err)
	}
	return s.adopt(abi.ClassComm, n, s.commNull), nil
}

func (s *Shim) CommGroup(comm abi.Handle) (abi.Handle, error) {
	s.charge()
	n, err := s.lib.Table.CommGroup(s.in(comm))
	if err != nil {
		return abi.GroupNull, s.err(err)
	}
	return s.adopt(abi.ClassGroup, n, s.groupNull), nil
}

func (s *Shim) CommFree(comm abi.Handle) error {
	s.charge()
	err := s.lib.Table.CommFree(s.in(comm))
	if err == nil {
		s.release(comm)
	}
	return s.err(err)
}

func (s *Shim) GroupSize(group abi.Handle) (int, error) {
	s.charge()
	n, err := s.lib.Table.GroupSize(s.in(group))
	return n, s.err(err)
}

func (s *Shim) GroupRank(group abi.Handle) (int, error) {
	s.charge()
	r, err := s.lib.Table.GroupRank(s.in(group))
	return s.countBack(r), s.err(err)
}

func (s *Shim) GroupIncl(group abi.Handle, ranks []int) (abi.Handle, error) {
	s.charge()
	n, err := s.lib.Table.GroupIncl(s.in(group), ranks)
	if err != nil {
		return abi.GroupNull, s.err(err)
	}
	return s.adopt(abi.ClassGroup, n, s.groupNull), nil
}

func (s *Shim) GroupExcl(group abi.Handle, ranks []int) (abi.Handle, error) {
	s.charge()
	n, err := s.lib.Table.GroupExcl(s.in(group), ranks)
	if err != nil {
		return abi.GroupNull, s.err(err)
	}
	return s.adopt(abi.ClassGroup, n, s.groupNull), nil
}

func (s *Shim) GroupTranslateRanks(g1 abi.Handle, ranks []int, g2 abi.Handle) ([]int, error) {
	s.charge()
	out, err := s.lib.Table.GroupTranslateRanks(s.in(g1), ranks, s.in(g2))
	for i := range out {
		out[i] = s.countBack(out[i])
	}
	return out, s.err(err)
}

func (s *Shim) GroupFree(group abi.Handle) error {
	s.charge()
	err := s.lib.Table.GroupFree(s.in(group))
	if err == nil {
		s.release(group)
	}
	return s.err(err)
}

func (s *Shim) TypeContiguous(count int, inner abi.Handle) (abi.Handle, error) {
	s.charge()
	n, err := s.lib.Table.TypeContiguous(count, s.in(inner))
	if err != nil {
		return abi.TypeNull, s.err(err)
	}
	return s.adopt(abi.ClassType, n, s.typeNull), nil
}

func (s *Shim) TypeVector(count, blocklen, stride int, inner abi.Handle) (abi.Handle, error) {
	s.charge()
	n, err := s.lib.Table.TypeVector(count, blocklen, stride, s.in(inner))
	if err != nil {
		return abi.TypeNull, s.err(err)
	}
	return s.adopt(abi.ClassType, n, s.typeNull), nil
}

func (s *Shim) TypeIndexed(blocklens, displs []int, inner abi.Handle) (abi.Handle, error) {
	s.charge()
	n, err := s.lib.Table.TypeIndexed(blocklens, displs, s.in(inner))
	if err != nil {
		return abi.TypeNull, s.err(err)
	}
	return s.adopt(abi.ClassType, n, s.typeNull), nil
}

func (s *Shim) TypeCreateStruct(blocklens, displs []int, typs []abi.Handle) (abi.Handle, error) {
	s.charge()
	native := make([]abi.Handle, len(typs))
	for i, t := range typs {
		native[i] = s.in(t)
	}
	n, err := s.lib.Table.TypeCreateStruct(blocklens, displs, native)
	if err != nil {
		return abi.TypeNull, s.err(err)
	}
	return s.adopt(abi.ClassType, n, s.typeNull), nil
}

func (s *Shim) TypeCommit(dtype abi.Handle) error {
	s.charge()
	return s.err(s.lib.Table.TypeCommit(s.in(dtype)))
}

func (s *Shim) TypeFree(dtype abi.Handle) error {
	s.charge()
	err := s.lib.Table.TypeFree(s.in(dtype))
	if err == nil {
		s.release(dtype)
	}
	return s.err(err)
}

func (s *Shim) TypeSize(dtype abi.Handle) (int, error) {
	s.charge()
	n, err := s.lib.Table.TypeSize(s.in(dtype))
	return n, s.err(err)
}

func (s *Shim) TypeExtent(dtype abi.Handle) (int, error) {
	s.charge()
	n, err := s.lib.Table.TypeExtent(s.in(dtype))
	return n, s.err(err)
}

func (s *Shim) GetCount(st *abi.Status, dtype abi.Handle) (int, error) {
	s.charge()
	n, err := s.lib.Table.GetCount(st, s.in(dtype))
	return s.countBack(n), s.err(err)
}

func (s *Shim) OpCreate(name string, commute bool) (abi.Handle, error) {
	s.charge()
	n, err := s.lib.Table.OpCreate(name, commute)
	if err != nil {
		return abi.OpNull, s.err(err)
	}
	return s.adopt(abi.ClassOp, n, s.opNull), nil
}

func (s *Shim) OpFree(op abi.Handle) error {
	s.charge()
	err := s.lib.Table.OpFree(s.in(op))
	if err == nil {
		s.release(op)
	}
	return s.err(err)
}

func (s *Shim) Abort(comm abi.Handle, code int) error {
	return s.err(s.lib.Table.Abort(s.in(comm), code))
}

// The ULFM (MPIX_*) surface: translated like everything else — handles
// in, adopted handles out, native MPIX error codes reclassified into the
// standard ErrProcFailed/ErrRevoked classes by err(). This is where the
// translation earns its keep for fault tolerance: each implementation
// numbers these newest classes differently, so an application's failure
// handling only survives an implementation swap because the shim maps
// them through the standard encoding in both directions.

func (s *Shim) CommRevoke(comm abi.Handle) error {
	s.charge()
	return s.err(s.lib.Table.CommRevoke(s.in(comm)))
}

func (s *Shim) CommShrink(comm abi.Handle) (abi.Handle, error) {
	s.charge()
	n, err := s.lib.Table.CommShrink(s.in(comm))
	if err != nil {
		return abi.CommNull, s.err(err)
	}
	return s.adopt(abi.ClassComm, n, s.commNull), nil
}

func (s *Shim) CommAgree(comm abi.Handle, flag uint64) (uint64, error) {
	s.charge()
	out, err := s.lib.Table.CommAgree(s.in(comm), flag)
	return out, s.err(err)
}

func (s *Shim) CommFailureAck(comm abi.Handle) error {
	s.charge()
	return s.err(s.lib.Table.CommFailureAck(s.in(comm)))
}

func (s *Shim) CommFailureGetAcked(comm abi.Handle) (abi.Handle, error) {
	s.charge()
	n, err := s.lib.Table.CommFailureGetAcked(s.in(comm))
	if err != nil {
		return abi.GroupNull, s.err(err)
	}
	return s.adopt(abi.ClassGroup, n, s.groupNull), nil
}
