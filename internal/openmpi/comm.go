package openmpi

import (
	"sort"

	"repro/internal/abi"
	"repro/internal/ops"
	"repro/internal/types"
)

// CommSize mirrors MPI_Comm_size.
func (p *Proc) CommSize(c *Comm) (int, int) {
	if c == nil {
		return 0, ErrComm
	}
	return c.Size(), Success
}

// CommRank mirrors MPI_Comm_rank.
func (p *Proc) CommRank(c *Comm) (int, int) {
	if c == nil {
		return 0, ErrComm
	}
	return c.myPos, Success
}

// CommDup duplicates a communicator (collective).
func (p *Proc) CommDup(c *Comm) (*Comm, int) {
	if c == nil {
		return nil, ErrComm
	}
	if code := p.Barrier(c); code != Success {
		return nil, code
	}
	c.chldSeq++
	nc := &Comm{
		cid:   deriveCID(c.cid, c.chldSeq),
		ranks: append([]int(nil), c.ranks...),
		myPos: c.myPos,
		name:  c.name + "_dup",
	}
	p.cidIndex[nc.cid] = nc
	return nc, Success
}

// CommSplit partitions a communicator by color/key (collective).
func (p *Proc) CommSplit(c *Comm, color, key int) (*Comm, int) {
	if c == nil {
		return nil, ErrComm
	}
	n := c.Size()
	mine := abi.Int64Bytes([]int64{int64(color), int64(key)})
	all := make([]byte, n*16)
	bt := p.Type(types.KindByte)
	if code := p.Allgather(mine, 16, bt, all, 16, bt, c); code != Success {
		return nil, code
	}
	c.chldSeq++
	ordinal := c.chldSeq
	if color == Undefined {
		return nil, Success // MPI_COMM_NULL
	}
	type member struct{ key, parentRank int }
	var members []member
	for r := 0; r < n; r++ {
		vals := abi.Int64sOf(all[r*16 : (r+1)*16])
		if int(vals[0]) == color {
			members = append(members, member{key: int(vals[1]), parentRank: r})
		}
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].key != members[j].key {
			return members[i].key < members[j].key
		}
		return members[i].parentRank < members[j].parentRank
	})
	ranks := make([]int, len(members))
	myPos := -1
	for i, m := range members {
		ranks[i] = c.ranks[m.parentRank]
		if m.parentRank == c.myPos {
			myPos = i
		}
	}
	nc := &Comm{
		cid:   deriveCID(c.cid, ordinal<<8|uint32(color&0xff)),
		ranks: ranks,
		myPos: myPos,
		name:  c.name + "_split",
	}
	p.cidIndex[nc.cid] = nc
	return nc, Success
}

// CommCreate builds a communicator from a subgroup (collective over the
// parent); non-members receive nil.
func (p *Proc) CommCreate(c *Comm, g *Group) (*Comm, int) {
	if c == nil {
		return nil, ErrComm
	}
	if g == nil {
		return nil, ErrGroup
	}
	if code := p.Barrier(c); code != Success {
		return nil, code
	}
	c.chldSeq++
	myPos := -1
	for i, w := range g.ranks {
		if w == p.rank {
			myPos = i
		}
	}
	if myPos == -1 {
		return nil, Success
	}
	nc := &Comm{
		cid:   deriveCID(c.cid, c.chldSeq|0x40000000),
		ranks: append([]int(nil), g.ranks...),
		myPos: myPos,
		name:  c.name + "_create",
	}
	p.cidIndex[nc.cid] = nc
	return nc, Success
}

// CommGroup extracts a communicator's group.
func (p *Proc) CommGroup(c *Comm) (*Group, int) {
	if c == nil {
		return nil, ErrComm
	}
	return &Group{ranks: append([]int(nil), c.ranks...), myPos: c.myPos}, Success
}

// CommFree releases a communicator. Predefined communicators are
// protected.
func (p *Proc) CommFree(c *Comm) int {
	if c == nil {
		return ErrComm
	}
	if c == p.CommWorld || c == p.CommSelf {
		return ErrComm
	}
	delete(p.cidIndex, c.cid)
	return Success
}

// GroupSize mirrors MPI_Group_size.
func (p *Proc) GroupSize(g *Group) (int, int) {
	if g == nil {
		return 0, ErrGroup
	}
	return len(g.ranks), Success
}

// GroupRank mirrors MPI_Group_rank.
func (p *Proc) GroupRank(g *Group) (int, int) {
	if g == nil {
		return 0, ErrGroup
	}
	if g.myPos < 0 {
		return Undefined, Success
	}
	return g.myPos, Success
}

// GroupIncl selects listed ranks into a new group.
func (p *Proc) GroupIncl(g *Group, ranksIn []int) (*Group, int) {
	if g == nil {
		return nil, ErrGroup
	}
	worlds := make([]int, len(ranksIn))
	myPos := -1
	for i, r := range ranksIn {
		if r < 0 || r >= len(g.ranks) {
			return nil, ErrRank
		}
		worlds[i] = g.ranks[r]
		if worlds[i] == p.rank {
			myPos = i
		}
	}
	return &Group{ranks: worlds, myPos: myPos}, Success
}

// GroupExcl removes listed ranks from a group.
func (p *Proc) GroupExcl(g *Group, ranksOut []int) (*Group, int) {
	if g == nil {
		return nil, ErrGroup
	}
	excl := make(map[int]bool, len(ranksOut))
	for _, r := range ranksOut {
		if r < 0 || r >= len(g.ranks) {
			return nil, ErrRank
		}
		excl[r] = true
	}
	out := &Group{myPos: -1}
	for i, w := range g.ranks {
		if excl[i] {
			continue
		}
		if w == p.rank {
			out.myPos = len(out.ranks)
		}
		out.ranks = append(out.ranks, w)
	}
	return out, Success
}

// GroupTranslateRanks maps ranks between groups.
func (p *Proc) GroupTranslateRanks(a *Group, ranks []int, b *Group) ([]int, int) {
	if a == nil || b == nil {
		return nil, ErrGroup
	}
	out := make([]int, len(ranks))
	for i, r := range ranks {
		if r < 0 || r >= len(a.ranks) {
			return nil, ErrRank
		}
		out[i] = Undefined
		for j, w := range b.ranks {
			if w == a.ranks[r] {
				out[i] = j
				break
			}
		}
	}
	return out, Success
}

// GroupFree releases a group (no-op for the GC, kept for API fidelity).
func (p *Proc) GroupFree(g *Group) int {
	if g == nil {
		return ErrGroup
	}
	return Success
}

// TypeContiguous mirrors MPI_Type_contiguous.
func (p *Proc) TypeContiguous(count int, inner *Datatype) (*Datatype, int) {
	if inner == nil {
		return nil, ErrType
	}
	t, err := types.Contiguous(count, inner.t)
	if err != nil {
		return nil, ErrArg
	}
	return &Datatype{t: t}, Success
}

// TypeVector mirrors MPI_Type_vector.
func (p *Proc) TypeVector(count, blocklen, stride int, inner *Datatype) (*Datatype, int) {
	if inner == nil {
		return nil, ErrType
	}
	t, err := types.Vector(count, blocklen, stride, inner.t)
	if err != nil {
		return nil, ErrArg
	}
	return &Datatype{t: t}, Success
}

// TypeIndexed mirrors MPI_Type_indexed.
func (p *Proc) TypeIndexed(blocklens, displs []int, inner *Datatype) (*Datatype, int) {
	if inner == nil {
		return nil, ErrType
	}
	t, err := types.Indexed(blocklens, displs, inner.t)
	if err != nil {
		return nil, ErrArg
	}
	return &Datatype{t: t}, Success
}

// TypeCreateStruct mirrors MPI_Type_create_struct.
func (p *Proc) TypeCreateStruct(blocklens, displs []int, typs []*Datatype) (*Datatype, int) {
	members := make([]*types.Type, len(typs))
	for i, dt := range typs {
		if dt == nil {
			return nil, ErrType
		}
		if err := dt.t.Commit(); err != nil {
			return nil, ErrType
		}
		members[i] = dt.t
	}
	t, err := types.Struct(blocklens, displs, members)
	if err != nil {
		return nil, ErrArg
	}
	return &Datatype{t: t}, Success
}

// TypeCommit mirrors MPI_Type_commit.
func (p *Proc) TypeCommit(dt *Datatype) int {
	if dt == nil {
		return ErrType
	}
	if err := dt.t.Commit(); err != nil {
		return ErrType
	}
	return Success
}

// TypeFree releases a datatype; predefined types are protected.
func (p *Proc) TypeFree(dt *Datatype) int {
	if dt == nil {
		return ErrType
	}
	if dt.prim.Valid() {
		return ErrType
	}
	return Success
}

// TypeSize mirrors MPI_Type_size.
func (p *Proc) TypeSize(dt *Datatype) (int, int) {
	if dt == nil {
		return 0, ErrType
	}
	if err := dt.t.Commit(); err != nil {
		return 0, ErrType
	}
	return dt.t.Size(), Success
}

// TypeExtent mirrors MPI_Type_get_extent.
func (p *Proc) TypeExtent(dt *Datatype) (int, int) {
	if dt == nil {
		return 0, ErrType
	}
	if err := dt.t.Commit(); err != nil {
		return 0, ErrType
	}
	return dt.t.Extent(), Success
}

// GetCount mirrors MPI_Get_count.
func (p *Proc) GetCount(st *Status, dt *Datatype) (int, int) {
	if dt == nil {
		return 0, ErrType
	}
	if err := dt.t.Commit(); err != nil {
		return 0, ErrType
	}
	sz := dt.t.Size()
	if sz == 0 {
		return 0, ErrType
	}
	if st.UCount%uint64(sz) != 0 {
		return Undefined, Success
	}
	return int(st.UCount / uint64(sz)), Success
}

// OpCreate registers a user reduction operator by registry name.
func (p *Proc) OpCreate(name string, commute bool) (*Op, int) {
	if _, _, err := ops.LookupUser(name); err != nil {
		return nil, ErrOp
	}
	return &Op{user: name, commute: commute}, Success
}

// OpFree releases a user operator; predefined operators are protected.
func (p *Proc) OpFree(o *Op) int {
	if o == nil {
		return ErrOp
	}
	if o.user == "" {
		return ErrOp
	}
	return Success
}
