package openmpi

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/abi"
	"repro/internal/fabric"
	"repro/internal/ops"
	"repro/internal/simnet"
	"repro/internal/types"
)

func runSPMD(t *testing.T, n int, fn func(p *Proc) error) {
	t.Helper()
	w, err := fabric.NewWorld(simnet.SingleNode(n))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if err := fn(Init(w, r)); err != nil {
				errs <- fmt.Errorf("rank %d: %w", r, err)
				w.Close()
			}
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("SPMD test timed out (likely deadlock)")
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func codef(code int, op string) error {
	if code != Success {
		return fmt.Errorf("%s failed: %s", op, ErrorString(code))
	}
	return nil
}

func TestSendRecvBothProtocols(t *testing.T) {
	for _, sz := range []int{64, 64 * 1024} { // eager and rendezvous
		t.Run(fmt.Sprintf("sz=%d", sz), func(t *testing.T) {
			runSPMD(t, 2, func(p *Proc) error {
				bt := p.Type(types.KindByte)
				if p.Rank() == 0 {
					buf := make([]byte, sz)
					for i := range buf {
						buf[i] = byte(i * 7)
					}
					return codef(p.Send(buf, sz, bt, 1, 4, p.CommWorld), "send")
				}
				buf := make([]byte, sz)
				var st Status
				if err := codef(p.Recv(buf, sz, bt, 0, 4, p.CommWorld, &st), "recv"); err != nil {
					return err
				}
				for i := range buf {
					if buf[i] != byte(i*7) {
						return fmt.Errorf("byte %d corrupted", i)
					}
				}
				if st.Source != 0 || st.Tag != 4 || st.UCount != uint64(sz) {
					return fmt.Errorf("status wrong: %+v", st)
				}
				return nil
			})
		})
	}
}

func TestWildcardsUseOMPIValues(t *testing.T) {
	// AnySource here is -1 (MPICH uses -2): the matching engine must honor
	// this package's constants.
	runSPMD(t, 2, func(p *Proc) error {
		bt := p.Type(types.KindByte)
		if p.Rank() == 0 {
			return codef(p.Send([]byte{9}, 1, bt, 1, 3, p.CommWorld), "send")
		}
		buf := make([]byte, 1)
		var st Status
		if err := codef(p.Recv(buf, 1, bt, AnySource, AnyTag, p.CommWorld, &st), "recv"); err != nil {
			return err
		}
		if buf[0] != 9 || st.Source != 0 {
			return fmt.Errorf("wildcard recv wrong: buf=%d st=%+v", buf[0], st)
		}
		return nil
	})
}

func TestProcNullUsesOMPIValue(t *testing.T) {
	runSPMD(t, 1, func(p *Proc) error {
		bt := p.Type(types.KindByte)
		if err := codef(p.Send(nil, 0, bt, ProcNull, 0, p.CommWorld), "send"); err != nil {
			return err
		}
		var st Status
		if err := codef(p.Recv(nil, 0, bt, ProcNull, 0, p.CommWorld, &st), "recv"); err != nil {
			return err
		}
		if st.Source != ProcNull {
			return fmt.Errorf("source = %d, want %d", st.Source, ProcNull)
		}
		return nil
	})
}

func TestIsendIrecvRing(t *testing.T) {
	runSPMD(t, 5, func(p *Proc) error {
		it := p.Type(types.KindInt64)
		n, me := p.Size(), p.Rank()
		right, left := (me+1)%n, (me-1+n)%n
		rb := make([]byte, 8)
		rr, code := p.Irecv(rb, 1, it, left, 0, p.CommWorld)
		if code != Success {
			return codef(code, "irecv")
		}
		sr, code := p.Isend(abi.Int64Bytes([]int64{int64(me)}), 1, it, right, 0, p.CommWorld)
		if code != Success {
			return codef(code, "isend")
		}
		if code := p.Waitall([]*Request{rr, sr}, nil); code != Success {
			return codef(code, "waitall")
		}
		if got := abi.Int64sOf(rb)[0]; got != int64(left) {
			return fmt.Errorf("got %d, want %d", got, left)
		}
		return nil
	})
}

func TestBarrierAllSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			runSPMD(t, n, func(p *Proc) error {
				for i := 0; i < 3; i++ {
					if code := p.Barrier(p.CommWorld); code != Success {
						return codef(code, "barrier")
					}
				}
				return nil
			})
		})
	}
}

func TestBcastBinaryAndChain(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		for _, count := range []int{1, 3000} { // 8B binary tree, 24KB chain
			t.Run(fmt.Sprintf("n=%d count=%d", n, count), func(t *testing.T) {
				runSPMD(t, n, func(p *Proc) error {
					ft := p.Type(types.KindFloat64)
					buf := make([]byte, count*8)
					root := n - 1
					if p.Rank() == root {
						vals := make([]float64, count)
						for i := range vals {
							vals[i] = float64(i) + 0.25
						}
						abi.PutFloat64s(buf, vals)
					}
					if code := p.Bcast(buf, count, ft, root, p.CommWorld); code != Success {
						return codef(code, "bcast")
					}
					got := abi.Float64sOf(buf)
					for i := range got {
						if got[i] != float64(i)+0.25 {
							return fmt.Errorf("elem %d = %v", i, got[i])
						}
					}
					return nil
				})
			})
		}
	}
}

func TestReduceBinaryTree(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			runSPMD(t, n, func(p *Proc) error {
				it := p.Type(types.KindInt64)
				sb := abi.Int64Bytes([]int64{int64(p.Rank() + 1)})
				rb := make([]byte, 8)
				if code := p.Reduce(sb, rb, 1, it, p.PredefOp(ops.OpSum), 0, p.CommWorld); code != Success {
					return codef(code, "reduce")
				}
				if p.Rank() == 0 {
					want := int64(n * (n + 1) / 2)
					if got := abi.Int64sOf(rb)[0]; got != want {
						return fmt.Errorf("sum = %d, want %d", got, want)
					}
				}
				return nil
			})
		})
	}
}

func TestAllreduceRDAndRing(t *testing.T) {
	for _, n := range []int{2, 3, 4, 6} {
		for _, count := range []int{1, 4096} { // 8B RD, 32KB ring
			t.Run(fmt.Sprintf("n=%d count=%d", n, count), func(t *testing.T) {
				runSPMD(t, n, func(p *Proc) error {
					it := p.Type(types.KindInt64)
					vals := make([]int64, count)
					for i := range vals {
						vals[i] = int64(p.Rank()+1) * int64(i%9+1)
					}
					rb := make([]byte, count*8)
					if code := p.Allreduce(abi.Int64Bytes(vals), rb, count, it,
						p.PredefOp(ops.OpSum), p.CommWorld); code != Success {
						return codef(code, "allreduce")
					}
					tri := int64(n * (n + 1) / 2)
					got := abi.Int64sOf(rb)
					for i := range got {
						want := tri * int64(i%9+1)
						if got[i] != want {
							return fmt.Errorf("elem %d = %d, want %d", i, got[i], want)
						}
					}
					return nil
				})
			})
		}
	}
}

func TestGatherScatterLinear(t *testing.T) {
	runSPMD(t, 5, func(p *Proc) error {
		it := p.Type(types.KindInt32)
		n, me := p.Size(), p.Rank()
		root := 2
		sb := abi.Int32Bytes([]int32{int32(me * 3)})
		var rb []byte
		if me == root {
			rb = make([]byte, n*4)
		}
		if code := p.Gather(sb, 1, it, rb, 1, it, root, p.CommWorld); code != Success {
			return codef(code, "gather")
		}
		if me == root {
			got := abi.Int32sOf(rb)
			for r := 0; r < n; r++ {
				if got[r] != int32(r*3) {
					return fmt.Errorf("gather[%d] = %d", r, got[r])
				}
			}
		}
		out := make([]byte, 4)
		if code := p.Scatter(rb, 1, it, out, 1, it, root, p.CommWorld); code != Success {
			return codef(code, "scatter")
		}
		if got := abi.Int32sOf(out)[0]; got != int32(me*3) {
			return fmt.Errorf("scatter = %d, want %d", got, me*3)
		}
		return nil
	})
}

func TestAllgatherBruckAndRing(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		for _, count := range []int{1, 300} { // 8B Bruck, 2400B ring
			t.Run(fmt.Sprintf("n=%d count=%d", n, count), func(t *testing.T) {
				runSPMD(t, n, func(p *Proc) error {
					it := p.Type(types.KindInt64)
					me := p.Rank()
					vals := make([]int64, count)
					for i := range vals {
						vals[i] = int64(me)*1000 + int64(i)
					}
					rb := make([]byte, n*count*8)
					if code := p.Allgather(abi.Int64Bytes(vals), count, it, rb, count, it, p.CommWorld); code != Success {
						return codef(code, "allgather")
					}
					got := abi.Int64sOf(rb)
					for r := 0; r < n; r++ {
						for i := 0; i < count; i++ {
							if got[r*count+i] != int64(r)*1000+int64(i) {
								return fmt.Errorf("block %d elem %d = %d", r, i, got[r*count+i])
							}
						}
					}
					return nil
				})
			})
		}
	}
}

func TestAlltoallLinear(t *testing.T) {
	for _, n := range []int{2, 4, 6} {
		for _, count := range []int{1, 700} {
			t.Run(fmt.Sprintf("n=%d count=%d", n, count), func(t *testing.T) {
				runSPMD(t, n, func(p *Proc) error {
					it := p.Type(types.KindInt64)
					me := p.Rank()
					vals := make([]int64, n*count)
					for d := 0; d < n; d++ {
						for i := 0; i < count; i++ {
							vals[d*count+i] = int64(me*100000 + d*100 + i%97)
						}
					}
					rb := make([]byte, n*count*8)
					if code := p.Alltoall(abi.Int64Bytes(vals), count, it, rb, count, it, p.CommWorld); code != Success {
						return codef(code, "alltoall")
					}
					got := abi.Int64sOf(rb)
					for s := 0; s < n; s++ {
						for i := 0; i < count; i++ {
							want := int64(s*100000 + me*100 + i%97)
							if got[s*count+i] != want {
								return fmt.Errorf("from %d elem %d = %d, want %d", s, i, got[s*count+i], want)
							}
						}
					}
					return nil
				})
			})
		}
	}
}

func TestCommSplitAndCollectives(t *testing.T) {
	runSPMD(t, 6, func(p *Proc) error {
		me := p.Rank()
		sub, code := p.CommSplit(p.CommWorld, me%3, me)
		if code != Success {
			return codef(code, "split")
		}
		sz, _ := p.CommSize(sub)
		if sz != 2 {
			return fmt.Errorf("split size = %d", sz)
		}
		it := p.Type(types.KindInt64)
		rb := make([]byte, 8)
		if code := p.Allreduce(abi.Int64Bytes([]int64{int64(me)}), rb, 1, it,
			p.PredefOp(ops.OpSum), sub); code != Success {
			return codef(code, "allreduce on split")
		}
		want := int64(me%3) + int64(me%3+3)
		if got := abi.Int64sOf(rb)[0]; got != want {
			return fmt.Errorf("split allreduce = %d, want %d", got, want)
		}
		return nil
	})
}

func TestCommDupAndGroups(t *testing.T) {
	runSPMD(t, 4, func(p *Proc) error {
		dup, code := p.CommDup(p.CommWorld)
		if code != Success {
			return codef(code, "dup")
		}
		if dup.CID == p.CommWorld.CID {
			return fmt.Errorf("dup shares the parent's context id")
		}
		g, code := p.CommGroup(dup)
		if code != Success {
			return codef(code, "group")
		}
		sub, code := p.GroupExcl(g, []int{0})
		if code != Success {
			return codef(code, "excl")
		}
		nc, code := p.CommCreate(dup, sub)
		if code != Success {
			return codef(code, "create")
		}
		if p.Rank() == 0 {
			if nc != nil {
				return fmt.Errorf("excluded rank got a communicator")
			}
			return nil
		}
		sz, _ := p.CommSize(nc)
		if sz != 3 {
			return fmt.Errorf("created size = %d", sz)
		}
		return nil
	})
}

func TestDerivedTypes(t *testing.T) {
	runSPMD(t, 2, func(p *Proc) error {
		vec, code := p.TypeVector(2, 1, 3, p.Type(types.KindInt32))
		if code != Success {
			return codef(code, "vector")
		}
		if code := p.TypeCommit(vec); code != Success {
			return codef(code, "commit")
		}
		sz, _ := p.TypeSize(vec)
		ext, _ := p.TypeExtent(vec)
		if sz != 8 || ext != 16 {
			return fmt.Errorf("size/extent = %d/%d, want 8/16", sz, ext)
		}
		if p.Rank() == 0 {
			return codef(p.Send(abi.Int32Bytes([]int32{7, 0, 0, 8}), 1, vec, 1, 0, p.CommWorld), "send")
		}
		dst := make([]byte, 16)
		var st Status
		if code := p.Recv(dst, 1, vec, 0, 0, p.CommWorld, &st); code != Success {
			return codef(code, "recv")
		}
		got := abi.Int32sOf(dst)
		if got[0] != 7 || got[3] != 8 {
			return fmt.Errorf("strided = %v", got)
		}
		cnt, code := p.GetCount(&st, vec)
		if code != Success || cnt != 1 {
			return fmt.Errorf("GetCount = %d code=%d", cnt, code)
		}
		return nil
	})
}

func TestErrorCodesDifferFromMPICH(t *testing.T) {
	// The numeric values are part of each implementation's ABI. Open MPI's
	// MPI_ERR_REQUEST is 7 and MPI_ERR_ROOT is 8; MPICH has 19 and 7. A
	// shim translating codes without a table would be wrong.
	if ErrRequest != 7 || ErrRoot != 8 || ErrTruncate != 15 {
		t.Fatalf("Open MPI error table changed: req=%d root=%d trunc=%d",
			ErrRequest, ErrRoot, ErrTruncate)
	}
	if AnySource != -1 || ProcNull != -3 {
		t.Fatalf("Open MPI constants changed: anysrc=%d procnull=%d", AnySource, ProcNull)
	}
}

func TestBadArguments(t *testing.T) {
	runSPMD(t, 1, func(p *Proc) error {
		bt := p.Type(types.KindByte)
		if code := p.Send(nil, 1, bt, 0, 0, nil); code != ErrComm {
			return fmt.Errorf("nil comm = %d", code)
		}
		if code := p.Send(nil, 1, nil, 0, 0, p.CommWorld); code != ErrType {
			return fmt.Errorf("nil type = %d", code)
		}
		if code := p.Send(nil, 1, bt, 7, 0, p.CommWorld); code != ErrRank {
			return fmt.Errorf("bad rank = %d", code)
		}
		if code := p.Bcast(nil, 1, bt, -9, p.CommWorld); code != ErrRoot {
			return fmt.Errorf("bad root = %d", code)
		}
		if code := p.CommFree(p.CommWorld); code != ErrComm {
			return fmt.Errorf("free world = %d", code)
		}
		if code := p.TypeFree(bt); code != ErrType {
			return fmt.Errorf("free predefined = %d", code)
		}
		if code := p.OpFree(p.PredefOp(ops.OpSum)); code != ErrOp {
			return fmt.Errorf("free predefined op = %d", code)
		}
		return nil
	})
}

func TestTruncationCode(t *testing.T) {
	runSPMD(t, 2, func(p *Proc) error {
		bt := p.Type(types.KindByte)
		if p.Rank() == 0 {
			return codef(p.Send(make([]byte, 50), 50, bt, 1, 0, p.CommWorld), "send")
		}
		var st Status
		code := p.Recv(make([]byte, 5), 5, bt, 0, 0, p.CommWorld, &st)
		if code != ErrTruncate {
			return fmt.Errorf("code = %d, want ErrTruncate(%d)", code, ErrTruncate)
		}
		return nil
	})
}
