// Package openmpi is the second simulated MPI implementation. Where
// internal/mpich reproduces the MPICH family's ABI, this package
// reproduces Open MPI's:
//
//   - handles are pointers to live objects (the real &ompi_mpi_comm_world
//     style), not encoded integers;
//   - the status object is laid out Open-MPI-style: MPI_SOURCE, MPI_TAG,
//     MPI_ERROR first, then the private count/cancelled words;
//   - wildcard/sentinel constants use different values from MPICH
//     (MPI_ANY_SOURCE=-1, MPI_PROC_NULL=-3 here);
//   - error codes follow Open MPI's table (MPI_ERR_REQUEST=7,
//     MPI_ERR_ROOT=8, ... differing from MPICH's numbering).
//
// The collective suite follows Open MPI's "tuned" module flavor: binary
// tree and pipelined-chain broadcast, ring allreduce for long messages,
// linear gather/scatter, Bruck allgather, linear alltoall with nonblocking
// overlap, and a recursive-doubling barrier. The algorithms themselves
// live in the shared internal/mpicore runtime; this package contributes
// the tuned thresholds (its Policy), its constant and error-code tables,
// and the pointer-object handle model — which is exactly the ABI surface
// the paper says is all that separates implementations.
//
// The deliberate ABI mismatch with internal/mpich is the point (the
// incompatibility of Section 2 that the paper's standard ABI removes):
// the Mukautuva shim (internal/mukautuva) has to translate every handle,
// constant, status record and error code that crosses the boundary. In
// the Section 5 evaluation this package is the "Open MPI" leg of every
// stack, and the launch-side implementation of Figure 6's
// checkpoint-under-Open-MPI, restart-under-MPICH experiment.
//
// In the README's layer diagram this is the second entry of the
// implementation-packages row, a thin ABI + policy layer like its MPICH
// sibling.
package openmpi

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/mpicore"
	"repro/internal/ops"
	"repro/internal/types"
)

// Version identifies the simulated library, mirroring the paper's testbed.
const Version = "Open MPI 3.1.2 (simulated)"

// Integer constants, Open MPI values (deliberately different from MPICH).
const (
	AnySource = -1
	AnyTag    = -1
	ProcNull  = -3
	Root      = -4
	Undefined = -32766
	TagUB     = 0x7fffffff
)

// Open MPI's error code table (values differ from MPICH's).
const (
	Success     = 0
	ErrBuffer   = 1
	ErrCount    = 2
	ErrType     = 3
	ErrTag      = 4
	ErrComm     = 5
	ErrRank     = 6
	ErrRequest  = 7
	ErrRoot     = 8
	ErrGroup    = 9
	ErrOp       = 10
	ErrTopology = 11
	ErrDims     = 12
	ErrArg      = 13
	ErrUnknown  = 14
	ErrTruncate = 15
	ErrOther    = 16
	ErrIntern   = 17
	errCount    = 18

	// ULFM (MPIX_*) error classes, in Open MPI's numbering — appended
	// after the classic table like Open MPI 5's ULFM integration, and
	// deliberately different from the simulated MPICH's 71/72: the two
	// implementations cannot even agree on what "a process failed" is
	// called, which is the paper's fault-tolerance ABI argument in
	// miniature.
	ErrProcFailed = 54 // MPIX_ERR_PROC_FAILED
	ErrRevoked    = 56 // MPIX_ERR_REVOKED
)

var errStrings = [errCount]string{
	Success:     "MPI_SUCCESS: no errors",
	ErrBuffer:   "MPI_ERR_BUFFER: invalid buffer pointer",
	ErrCount:    "MPI_ERR_COUNT: invalid count argument",
	ErrType:     "MPI_ERR_TYPE: invalid datatype",
	ErrTag:      "MPI_ERR_TAG: invalid tag",
	ErrComm:     "MPI_ERR_COMM: invalid communicator",
	ErrRank:     "MPI_ERR_RANK: invalid rank",
	ErrRequest:  "MPI_ERR_REQUEST: invalid request",
	ErrRoot:     "MPI_ERR_ROOT: invalid root",
	ErrGroup:    "MPI_ERR_GROUP: invalid group",
	ErrOp:       "MPI_ERR_OP: invalid reduce operation",
	ErrTopology: "MPI_ERR_TOPOLOGY: invalid communicator topology",
	ErrDims:     "MPI_ERR_DIMS: invalid dimension argument",
	ErrArg:      "MPI_ERR_ARG: invalid argument of some other kind",
	ErrUnknown:  "MPI_ERR_UNKNOWN: unknown error",
	ErrTruncate: "MPI_ERR_TRUNCATE: message truncated",
	ErrOther:    "MPI_ERR_OTHER: known error not in this list",
	ErrIntern:   "MPI_ERR_INTERN: internal error",
}

// ErrorString mirrors MPI_Error_string.
func ErrorString(code int) string {
	switch code {
	case ErrProcFailed:
		return "MPIX_ERR_PROC_FAILED: process in the communicator has failed"
	case ErrRevoked:
		return "MPIX_ERR_REVOKED: communicator has been revoked"
	}
	if code >= 0 && code < errCount {
		return errStrings[code]
	}
	return "MPI_ERR_UNKNOWN: unknown error code"
}

// Status is Open MPI's layout: public fields first, private words after —
// the opposite order from MPICH's, which is exactly the kind of ABI
// difference Mukautuva exists to paper over.
type Status struct {
	Source    int32 // MPI_SOURCE
	Tag       int32 // MPI_TAG
	Error     int32 // MPI_ERROR
	UCount    uint64
	Cancelled bool
}

// Open MPI's handles are pointers to live objects, so the runtime's
// object types ARE this package's handle types — the pointer value is the
// handle, exactly like &ompi_mpi_comm_world. (MPICH, by contrast, wraps
// the same objects behind encoded 32-bit integers.)
type (
	// Comm is a communicator object; the handle is the pointer itself.
	Comm = mpicore.Comm
	// Group is a process group object.
	Group = mpicore.Group
	// Datatype is a datatype object wrapping the shared type engine.
	Datatype = mpicore.Type
	// Op is a reduction operator object.
	Op = mpicore.Op
	// Request is an in-flight operation object; the handle is the pointer.
	Request = mpicore.Request
)

// eagerLimit is Open MPI's (BTL tcp flavored) eager/rendezvous
// switchover, intentionally lower than MPICH's.
const eagerLimit = 4 * 1024

// Open MPI "tuned"-style algorithm selection thresholds (bytes).
const (
	bcastBinaryMax    = 32768    // binary tree below, pipelined chain above
	bcastSegSize      = 8 * 1024 // chain pipeline segment size
	allreduceRDMax    = 32768    // recursive doubling below, ring above
	allgatherBruckMax = 1024     // Bruck below (per block), ring above
	// alltoallBruckMax selects Bruck below (the tuned module's
	// small-message choice) and basic linear with nonblocking overlap
	// above. The thresholds and the linear algorithm differ from MPICH's
	// Bruck/pairwise selection, giving the two implementations visibly
	// different alltoall curves at medium sizes.
	alltoallBruckMax = 200
)

var ompiConsts = mpicore.Consts{
	AnySource: AnySource,
	AnyTag:    AnyTag,
	ProcNull:  ProcNull,
	TagUB:     TagUB,
	Undefined: Undefined,
}

var ompiCodes = mpicore.Codes{
	Success:       Success,
	ErrBuffer:     ErrBuffer,
	ErrCount:      ErrCount,
	ErrType:       ErrType,
	ErrTag:        ErrTag,
	ErrComm:       ErrComm,
	ErrRank:       ErrRank,
	ErrRoot:       ErrRoot,
	ErrGroup:      ErrGroup,
	ErrOp:         ErrOp,
	ErrArg:        ErrArg,
	ErrTruncate:   ErrTruncate,
	ErrRequest:    ErrRequest,
	ErrIntern:     ErrIntern,
	ErrOther:      ErrOther,
	ErrProcFailed: ErrProcFailed,
	ErrRevoked:    ErrRevoked,
}

// Policy is Open MPI's tuned algorithm personality over the shared
// runtime.
func Policy() mpicore.Policy {
	return mpicore.Policy{
		EagerMax: eagerLimit,
		// 'O': keep openmpi's cid stream distinct from mpich's.
		DeriveCID: mpicore.SaltedCIDDeriver('O'),
		Barrier: func(p *mpicore.Proc, c *mpicore.Comm, tag int32) int {
			return p.BarrierRDFold(c, tag)
		},
		Bcast: func(p *mpicore.Proc, c *mpicore.Comm, packed []byte, root int, tag int32) int {
			if len(packed) <= bcastBinaryMax {
				return p.BcastBinaryTree(c, packed, root, tag)
			}
			return p.BcastChain(c, packed, root, tag, bcastSegSize)
		},
		Reduce: func(p *mpicore.Proc, c *mpicore.Comm, acc []byte, o *mpicore.Op, k types.Kind, root int, tag int32) int {
			return p.ReduceBinaryTree(c, acc, o, k, root, tag)
		},
		Allreduce: func(p *mpicore.Proc, c *mpicore.Comm, acc []byte, o *mpicore.Op, k types.Kind, tag int32) int {
			elems := len(acc) / k.Size()
			if len(acc) > allreduceRDMax && elems >= c.Size() {
				return p.AllreduceRing(c, acc, o, k, tag)
			}
			return p.AllreduceRecDoubling(c, acc, o, k, tag, 63)
		},
		Gather: func(p *mpicore.Proc, c *mpicore.Comm, own, region []byte, blockSz, root int, tag int32) int {
			return p.GatherLinear(c, own, region, blockSz, root, tag)
		},
		Scatter: func(p *mpicore.Proc, c *mpicore.Comm, region []byte, blockSz, root int, tag int32) ([]byte, int) {
			return p.ScatterLinear(c, region, blockSz, root, tag)
		},
		Allgather: func(p *mpicore.Proc, c *mpicore.Comm, region []byte, blockSz int, tag int32) int {
			if blockSz <= allgatherBruckMax {
				return p.AllgatherBruck(c, region, blockSz, tag)
			}
			return p.AllgatherRing(c, region, blockSz, tag)
		},
		Alltoall: func(p *mpicore.Proc, c *mpicore.Comm, out, in []byte, blockSz int, tag int32) int {
			if blockSz <= alltoallBruckMax && c.Size() > 2 {
				return p.AlltoallBruck(c, out, in, blockSz, tag)
			}
			return p.AlltoallOverlap(c, out, in, blockSz, tag)
		},
	}
}

// Proc is one rank's Open MPI library instance: the shared mpicore
// runtime under Open MPI's pointer-handle ABI.
type Proc struct {
	rt *mpicore.Proc

	// Predefined objects, exposed as pointers like &ompi_mpi_comm_world.
	CommWorld *Comm
	CommSelf  *Comm
}

// Init attaches a fresh Open MPI instance to a world endpoint.
func Init(w *fabric.World, rank int) *Proc {
	rt := mpicore.NewProc(w, rank, ompiConsts, ompiCodes, Policy())
	return &Proc{rt: rt, CommWorld: rt.CommWorld, CommSelf: rt.CommSelf}
}

// Type returns the predefined datatype object for a primitive kind.
func (p *Proc) Type(k types.Kind) *Datatype { return p.rt.Predef(k) }

// PredefOp returns the predefined operator object.
func (p *Proc) PredefOp(op ops.Op) *Op { return p.rt.PredefOp(op) }

// Rank returns the world rank; Size the world size.
func (p *Proc) Rank() int { return p.rt.Rank() }

// Size returns the number of ranks in the world.
func (p *Proc) Size() int { return p.rt.Size() }

// World exposes the fabric world.
func (p *Proc) World() *fabric.World { return p.rt.World() }

// Finalize releases the instance.
func (p *Proc) Finalize() int { return p.rt.Finalize() }

// Abort tears the world down, like MPI_Abort.
func (p *Proc) Abort(code int) int { return p.rt.Abort(code) }

// nativeStatus converts the runtime's canonical status into Open MPI's
// public-fields-first layout.
func nativeStatus(cs *mpicore.Status) Status {
	return Status{
		Source: cs.Source, Tag: cs.Tag, Error: cs.Error,
		UCount: cs.CountBytes, Cancelled: cs.Cancelled,
	}
}

func (p *Proc) String() string {
	posted, unexpected, _, _ := p.rt.Depths()
	return fmt.Sprintf("openmpi rank %d/%d: posted=%d unexpected=%d",
		p.rt.Rank(), p.rt.Size(), posted, unexpected)
}
