// Package openmpi is the second simulated MPI implementation. Where
// internal/mpich reproduces the MPICH family's ABI, this package
// reproduces Open MPI's:
//
//   - handles are pointers to live objects (the real &ompi_mpi_comm_world
//     style), not encoded integers;
//   - the status object is laid out Open-MPI-style: MPI_SOURCE, MPI_TAG,
//     MPI_ERROR first, then the private count/cancelled words;
//   - wildcard/sentinel constants use different values from MPICH
//     (MPI_ANY_SOURCE=-1, MPI_PROC_NULL=-3 here);
//   - error codes follow Open MPI's table (MPI_ERR_REQUEST=7,
//     MPI_ERR_ROOT=8, ... differing from MPICH's numbering).
//
// The collective suite follows Open MPI's "tuned" module flavor: binary
// tree and pipelined-chain broadcast, ring allreduce for long messages,
// linear gather/scatter, Bruck allgather, linear alltoall with nonblocking
// overlap, and a recursive-doubling barrier.
//
// The deliberate ABI mismatch with internal/mpich is the point (the
// incompatibility of Section 2 that the paper's standard ABI removes):
// the Mukautuva shim (internal/mukautuva) has to translate every handle,
// constant, status record and error code that crosses the boundary. In
// the Section 5 evaluation this package is the "Open MPI" leg of every
// stack, and the launch-side implementation of Figure 6's
// checkpoint-under-Open-MPI, restart-under-MPICH experiment.
package openmpi

import (
	"fmt"
	"hash/fnv"

	"repro/internal/fabric"
	"repro/internal/ops"
	"repro/internal/types"
)

// Version identifies the simulated library, mirroring the paper's testbed.
const Version = "Open MPI 3.1.2 (simulated)"

// Integer constants, Open MPI values (deliberately different from MPICH).
const (
	AnySource = -1
	AnyTag    = -1
	ProcNull  = -3
	Root      = -4
	Undefined = -32766
	TagUB     = 0x7fffffff
)

// Open MPI's error code table (values differ from MPICH's).
const (
	Success     = 0
	ErrBuffer   = 1
	ErrCount    = 2
	ErrType     = 3
	ErrTag      = 4
	ErrComm     = 5
	ErrRank     = 6
	ErrRequest  = 7
	ErrRoot     = 8
	ErrGroup    = 9
	ErrOp       = 10
	ErrTopology = 11
	ErrDims     = 12
	ErrArg      = 13
	ErrUnknown  = 14
	ErrTruncate = 15
	ErrOther    = 16
	ErrIntern   = 17
	errCount    = 18
)

var errStrings = [errCount]string{
	Success:     "MPI_SUCCESS: no errors",
	ErrBuffer:   "MPI_ERR_BUFFER: invalid buffer pointer",
	ErrCount:    "MPI_ERR_COUNT: invalid count argument",
	ErrType:     "MPI_ERR_TYPE: invalid datatype",
	ErrTag:      "MPI_ERR_TAG: invalid tag",
	ErrComm:     "MPI_ERR_COMM: invalid communicator",
	ErrRank:     "MPI_ERR_RANK: invalid rank",
	ErrRequest:  "MPI_ERR_REQUEST: invalid request",
	ErrRoot:     "MPI_ERR_ROOT: invalid root",
	ErrGroup:    "MPI_ERR_GROUP: invalid group",
	ErrOp:       "MPI_ERR_OP: invalid reduce operation",
	ErrTopology: "MPI_ERR_TOPOLOGY: invalid communicator topology",
	ErrDims:     "MPI_ERR_DIMS: invalid dimension argument",
	ErrArg:      "MPI_ERR_ARG: invalid argument of some other kind",
	ErrUnknown:  "MPI_ERR_UNKNOWN: unknown error",
	ErrTruncate: "MPI_ERR_TRUNCATE: message truncated",
	ErrOther:    "MPI_ERR_OTHER: known error not in this list",
	ErrIntern:   "MPI_ERR_INTERN: internal error",
}

// ErrorString mirrors MPI_Error_string.
func ErrorString(code int) string {
	if code >= 0 && code < errCount {
		return errStrings[code]
	}
	return "MPI_ERR_UNKNOWN: unknown error code"
}

// Status is Open MPI's layout: public fields first, private words after —
// the opposite order from MPICH's, which is exactly the kind of ABI
// difference Mukautuva exists to paper over.
type Status struct {
	Source    int32 // MPI_SOURCE
	Tag       int32 // MPI_TAG
	Error     int32 // MPI_ERROR
	UCount    uint64
	Cancelled bool
}

// Comm is a communicator object; the handle is the pointer itself.
type Comm struct {
	cid     uint32
	ranks   []int // comm rank -> world rank
	myPos   int
	collSeq uint32
	chldSeq uint32
	name    string
}

// Size returns the communicator's size.
func (c *Comm) Size() int { return len(c.ranks) }

// posOf translates a world rank to a comm rank, or -1.
func (c *Comm) posOf(world int) int {
	for i, r := range c.ranks {
		if r == world {
			return i
		}
	}
	return -1
}

// Group is a process group object.
type Group struct {
	ranks []int
	myPos int // -1 when not a member
}

// Datatype is a datatype object wrapping the shared type engine.
type Datatype struct {
	t    *types.Type
	prim types.Kind
}

// Op is a reduction operator object.
type Op struct {
	op      ops.Op
	user    string
	commute bool
}

// Request is an in-flight operation object; the handle is the pointer.
type Request struct {
	isRecv bool
	done   bool
	code   int

	comm     *Comm
	buf      []byte
	count    int
	dt       *Datatype
	srcWorld int
	tag      int
	cid      uint32
	raw      bool
	rawOut   []byte
	status   Status

	payload []byte
	seq     uint64
}

type seqKey struct {
	peer int
	seq  uint64
}

// collCIDBit separates collective-internal traffic from application
// point-to-point traffic on the same communicator.
const collCIDBit uint32 = 1 << 31

// eagerLimit is Open MPI's (BTL tcp flavored) eager/rendezvous switchover,
// intentionally lower than MPICH's.
const eagerLimit = 4 * 1024

// Proc is one rank's Open MPI library instance.
type Proc struct {
	ep    *fabric.Endpoint
	world *fabric.World
	rank  int
	size  int

	// Predefined objects, exposed as pointers like &ompi_mpi_comm_world.
	CommWorld *Comm
	CommSelf  *Comm

	predefTypes map[types.Kind]*Datatype
	predefOps   map[ops.Op]*Op

	cidIndex map[uint32]*Comm

	posted       []*Request
	unexpected   []*fabric.Envelope
	pendingSend  map[uint64]*Request
	awaitingData map[seqKey]*Request
	nextSeq      uint64

	finalized bool
}

// Init attaches a fresh Open MPI instance to a world endpoint.
func Init(w *fabric.World, rank int) *Proc {
	p := &Proc{
		ep:           w.Endpoint(rank),
		world:        w,
		rank:         rank,
		size:         w.Size(),
		predefTypes:  make(map[types.Kind]*Datatype),
		predefOps:    make(map[ops.Op]*Op),
		cidIndex:     make(map[uint32]*Comm),
		pendingSend:  make(map[uint64]*Request),
		awaitingData: make(map[seqKey]*Request),
	}
	worldRanks := make([]int, p.size)
	for i := range worldRanks {
		worldRanks[i] = i
	}
	p.CommWorld = &Comm{cid: 1, ranks: worldRanks, myPos: rank, name: "MPI_COMM_WORLD"}
	p.CommSelf = &Comm{cid: 2, ranks: []int{rank}, myPos: 0, name: "MPI_COMM_SELF"}
	p.cidIndex[1] = p.CommWorld
	p.cidIndex[2] = p.CommSelf
	for _, k := range types.Kinds() {
		p.predefTypes[k] = &Datatype{t: types.Predefined(k), prim: k}
	}
	for _, op := range ops.Ops() {
		p.predefOps[op] = &Op{op: op, commute: true}
	}
	return p
}

// Type returns the predefined datatype object for a primitive kind.
func (p *Proc) Type(k types.Kind) *Datatype { return p.predefTypes[k] }

// PredefOp returns the predefined operator object.
func (p *Proc) PredefOp(op ops.Op) *Op { return p.predefOps[op] }

// Rank returns the world rank; Size the world size.
func (p *Proc) Rank() int { return p.rank }

// Size returns the number of ranks in the world.
func (p *Proc) Size() int { return p.size }

// World exposes the fabric world.
func (p *Proc) World() *fabric.World { return p.world }

// Finalize releases the instance.
func (p *Proc) Finalize() int {
	p.finalized = true
	return Success
}

// Abort tears the world down, like MPI_Abort.
func (p *Proc) Abort(code int) int {
	p.world.Close()
	return ErrOther
}

// deriveCID allocates a child context id deterministically from the
// parent's id and creation ordinal (see the mpich twin for rationale).
func deriveCID(parent, ordinal uint32) uint32 {
	h := fnv.New32()
	var b [9]byte
	b[0] = 0x4f // 'O': keep openmpi's cid stream distinct from mpich's
	b[1], b[2], b[3], b[4] = byte(parent), byte(parent>>8), byte(parent>>16), byte(parent>>24)
	b[5], b[6], b[7], b[8] = byte(ordinal), byte(ordinal>>8), byte(ordinal>>16), byte(ordinal>>24)
	h.Write(b[:])
	cid := h.Sum32() &^ collCIDBit
	if cid <= 2 {
		cid += 3
	}
	return cid
}

func (p *Proc) String() string {
	return fmt.Sprintf("openmpi rank %d/%d: posted=%d unexpected=%d",
		p.rank, p.size, len(p.posted), len(p.unexpected))
}
