package openmpi

import (
	"repro/internal/ops"
	"repro/internal/types"
)

// Open MPI "tuned"-style algorithm selection thresholds (bytes).
const (
	bcastBinaryMax    = 32768    // binary tree below, pipelined chain above
	bcastSegSize      = 8 * 1024 // chain pipeline segment size
	allreduceRDMax    = 32768    // recursive doubling below, ring above
	allgatherBruckMax = 1024     // Bruck below (per block), ring above
)

// nextTag reserves a tag block for one collective on c.
func (p *Proc) nextTag(c *Comm) int32 {
	c.collSeq++
	return int32((c.collSeq & 0x00ffffff) << 6)
}

// csend sends packed bytes to a comm rank on the collective context,
// blocking until handed to the fabric.
func (p *Proc) csend(c *Comm, peer int, tag int32, data []byte) int {
	r := p.startSend(data, c.ranks[peer], tag, c.cid|collCIDBit)
	for r != nil && !r.done {
		if code := p.progress(true); code != Success {
			return code
		}
	}
	if r != nil {
		return r.code
	}
	return Success
}

// crecvPost posts a raw receive on the collective context without waiting.
func (p *Proc) crecvPost(c *Comm, peer int, tag int32) *Request {
	r := &Request{
		isRecv: true, comm: c, raw: true,
		srcWorld: c.ranks[peer], tag: int(tag), cid: c.cid | collCIDBit,
	}
	p.post(r)
	return r
}

// crecv blocks for a raw message from a comm rank on the collective
// context.
func (p *Proc) crecv(c *Comm, peer int, tag int32) ([]byte, int) {
	r := p.crecvPost(c, peer, tag)
	for !r.done {
		if code := p.progress(true); code != Success {
			return nil, code
		}
	}
	return r.rawOut, r.code
}

// cswap posts the receive first, then sends — the deadlock-free pairwise
// exchange.
func (p *Proc) cswap(c *Comm, sendTo, recvFrom int, tag int32, data []byte) ([]byte, int) {
	r := p.crecvPost(c, recvFrom, tag)
	if code := p.csend(c, sendTo, tag, data); code != Success {
		return nil, code
	}
	for !r.done {
		if code := p.progress(true); code != Success {
			return nil, code
		}
	}
	return r.rawOut, r.code
}

// Barrier uses recursive doubling with a fold for non-power-of-two sizes
// (Open MPI's tuned default for mid-size communicators).
func (p *Proc) Barrier(c *Comm) int {
	if c == nil {
		return ErrComm
	}
	n, me := c.Size(), c.myPos
	if n == 1 {
		return Success
	}
	tag := p.nextTag(c)
	pof2 := 1
	for pof2*2 <= n {
		pof2 *= 2
	}
	rem := n - pof2
	newrank := -1
	switch {
	case me < 2*rem && me%2 == 0:
		if code := p.csend(c, me+1, tag, nil); code != Success {
			return code
		}
	case me < 2*rem:
		if _, code := p.crecv(c, me-1, tag); code != Success {
			return code
		}
		newrank = me / 2
	default:
		newrank = me - rem
	}
	if newrank != -1 {
		round := int32(1)
		for mask := 1; mask < pof2; mask <<= 1 {
			pn := newrank ^ mask
			partner := pn + rem
			if pn < rem {
				partner = pn*2 + 1
			}
			if _, code := p.cswap(c, partner, partner, tag+round, nil); code != Success {
				return code
			}
			round++
		}
	}
	if me < 2*rem {
		if me%2 != 0 {
			return p.csend(c, me-1, tag+63, nil)
		}
		if _, code := p.crecv(c, me+1, tag+63); code != Success {
			return code
		}
	}
	return Success
}

// Bcast uses a binary tree for short messages and a pipelined chain for
// long ones.
func (p *Proc) Bcast(buf []byte, count int, dt *Datatype, root int, c *Comm) int {
	if c == nil {
		return ErrComm
	}
	if dt == nil || !dt.t.Committed() {
		return ErrType
	}
	if root < 0 || root >= c.Size() {
		return ErrRoot
	}
	if count < 0 {
		return ErrCount
	}
	n, me := c.Size(), c.myPos
	nbytes := count * dt.t.Size()
	if n == 1 || nbytes == 0 {
		return Success
	}
	tag := p.nextTag(c)
	var packed []byte
	if me == root {
		var code int
		if packed, code = pack(dt, buf, count); code != Success {
			return code
		}
	} else {
		packed = make([]byte, nbytes)
	}
	var code int
	if nbytes <= bcastBinaryMax {
		code = p.bcastBinaryTree(c, packed, root, tag)
	} else {
		code = p.bcastChain(c, packed, root, tag)
	}
	if code != Success {
		return code
	}
	if me != root {
		if _, err := dt.t.Unpack(packed, count, buf); err != nil {
			return ErrBuffer
		}
	}
	return Success
}

// bcastBinaryTree broadcasts down an in-order binary tree over relative
// ranks: children of relative node r are 2r+1 and 2r+2.
func (p *Proc) bcastBinaryTree(c *Comm, packed []byte, root int, tag int32) int {
	n, me := c.Size(), c.myPos
	rel := (me - root + n) % n
	abs := func(r int) int { return (r + root) % n }
	if rel != 0 {
		parent := (rel - 1) / 2
		data, code := p.crecv(c, abs(parent), tag)
		if code != Success {
			return code
		}
		copy(packed, data)
	}
	for _, child := range []int{2*rel + 1, 2*rel + 2} {
		if child < n {
			if code := p.csend(c, abs(child), tag, packed); code != Success {
				return code
			}
		}
	}
	return Success
}

// bcastChain pipelines fixed-size segments down the rank chain
// root -> root+1 -> ... -> root+n-1 (relative order).
func (p *Proc) bcastChain(c *Comm, packed []byte, root int, tag int32) int {
	n, me := c.Size(), c.myPos
	rel := (me - root + n) % n
	abs := func(r int) int { return (r + root) % n }
	nseg := (len(packed) + bcastSegSize - 1) / bcastSegSize
	for s := 0; s < nseg; s++ {
		lo := s * bcastSegSize
		hi := lo + bcastSegSize
		if hi > len(packed) {
			hi = len(packed)
		}
		if rel != 0 {
			data, code := p.crecv(c, abs(rel-1), tag)
			if code != Success {
				return code
			}
			copy(packed[lo:hi], data)
		}
		if rel != n-1 {
			if code := p.csend(c, abs(rel+1), tag, packed[lo:hi]); code != Success {
				return code
			}
		}
	}
	return Success
}

func reduceKind(dt *Datatype) (types.Kind, int) {
	k, ok := dt.t.PrimKind()
	if !ok {
		return types.KindInvalid, ErrType
	}
	return k, Success
}

func fold(o *Op, k types.Kind, acc, in []byte) int {
	count := len(acc) / k.Size()
	if o.user != "" {
		fn, _, err := ops.LookupUser(o.user)
		if err != nil {
			return ErrOp
		}
		fn(acc, in, k, count)
		return Success
	}
	if err := ops.Apply(o.op, k, acc, in, count); err != nil {
		return ErrOp
	}
	return Success
}

func opOK(o *Op, k types.Kind) bool {
	if o.user != "" {
		return true
	}
	return ops.Compatible(o.op, k)
}

// Reduce folds up an in-order binary tree over relative ranks.
func (p *Proc) Reduce(sendbuf, recvbuf []byte, count int, dt *Datatype, o *Op, root int, c *Comm) int {
	if c == nil {
		return ErrComm
	}
	if dt == nil || !dt.t.Committed() {
		return ErrType
	}
	if o == nil {
		return ErrOp
	}
	if root < 0 || root >= c.Size() {
		return ErrRoot
	}
	k, code := reduceKind(dt)
	if code != Success {
		return code
	}
	if !opOK(o, k) {
		return ErrOp
	}
	n, me := c.Size(), c.myPos
	acc, code := pack(dt, sendbuf, count)
	if code != Success {
		return code
	}
	tag := p.nextTag(c)
	rel := (me - root + n) % n
	abs := func(r int) int { return (r + root) % n }
	for _, child := range []int{2*rel + 1, 2*rel + 2} {
		if child < n {
			data, code := p.crecv(c, abs(child), tag)
			if code != Success {
				return code
			}
			if code := fold(o, k, acc, data); code != Success {
				return code
			}
		}
	}
	if rel != 0 {
		parent := (rel - 1) / 2
		if code := p.csend(c, abs(parent), tag, acc); code != Success {
			return code
		}
	} else if count > 0 {
		if _, err := dt.t.Unpack(acc, count, recvbuf); err != nil {
			return ErrBuffer
		}
	}
	return Success
}

// Allreduce uses recursive doubling for short messages and the classic
// ring (reduce-scatter + allgather) for long ones.
func (p *Proc) Allreduce(sendbuf, recvbuf []byte, count int, dt *Datatype, o *Op, c *Comm) int {
	if c == nil {
		return ErrComm
	}
	if dt == nil || !dt.t.Committed() {
		return ErrType
	}
	if o == nil {
		return ErrOp
	}
	if count < 0 {
		return ErrCount
	}
	k, code := reduceKind(dt)
	if code != Success {
		return code
	}
	if !opOK(o, k) {
		return ErrOp
	}
	acc, code := pack(dt, sendbuf, count)
	if code != Success {
		return code
	}
	n := c.Size()
	elems := len(acc) / k.Size()
	tag := p.nextTag(c)
	if n > 1 && len(acc) > 0 {
		if len(acc) > allreduceRDMax && elems >= n {
			code = p.allreduceRing(c, acc, o, k, tag)
		} else {
			code = p.allreduceRD(c, acc, o, k, tag)
		}
		if code != Success {
			return code
		}
	}
	if count > 0 {
		if _, err := dt.t.Unpack(acc, count, recvbuf); err != nil {
			return ErrBuffer
		}
	}
	return Success
}

// allreduceRD is recursive doubling with a non-power-of-two fold.
func (p *Proc) allreduceRD(c *Comm, acc []byte, o *Op, k types.Kind, tag int32) int {
	n, me := c.Size(), c.myPos
	pof2 := 1
	for pof2*2 <= n {
		pof2 *= 2
	}
	rem := n - pof2
	newrank := -1
	switch {
	case me < 2*rem && me%2 == 0:
		if code := p.csend(c, me+1, tag, acc); code != Success {
			return code
		}
	case me < 2*rem:
		data, code := p.crecv(c, me-1, tag)
		if code != Success {
			return code
		}
		if code := fold(o, k, acc, data); code != Success {
			return code
		}
		newrank = me / 2
	default:
		newrank = me - rem
	}
	if newrank != -1 {
		round := int32(1)
		for mask := 1; mask < pof2; mask <<= 1 {
			pn := newrank ^ mask
			partner := pn + rem
			if pn < rem {
				partner = pn*2 + 1
			}
			data, code := p.cswap(c, partner, partner, tag+round, acc)
			if code != Success {
				return code
			}
			if code := fold(o, k, acc, data); code != Success {
				return code
			}
			round++
		}
	}
	if me < 2*rem {
		if me%2 != 0 {
			return p.csend(c, me-1, tag+63, acc)
		}
		data, code := p.crecv(c, me+1, tag+63)
		if code != Success {
			return code
		}
		copy(acc, data)
	}
	return Success
}

// allreduceRing is the bandwidth-optimal ring: n-1 reduce-scatter steps
// followed by n-1 allgather steps over element chunks.
func (p *Proc) allreduceRing(c *Comm, acc []byte, o *Op, k types.Kind, tag int32) int {
	n, me := c.Size(), c.myPos
	es := k.Size()
	elems := len(acc) / es
	off := chunkOffsets(elems, n)
	right := (me + 1) % n
	left := (me - 1 + n) % n
	chunk := func(i int) []byte { return acc[off[i]*es : off[i+1]*es] }
	// Reduce-scatter ring.
	for s := 0; s < n-1; s++ {
		sendIdx := (me - s + n) % n
		recvIdx := (me - s - 1 + n) % n
		data, code := p.cswap(c, right, left, tag, chunk(sendIdx))
		if code != Success {
			return code
		}
		if code := fold(o, k, chunk(recvIdx), data); code != Success {
			return code
		}
	}
	// Allgather ring.
	for s := 0; s < n-1; s++ {
		sendIdx := (me + 1 - s + n) % n
		recvIdx := (me - s + n) % n
		data, code := p.cswap(c, right, left, tag+1, chunk(sendIdx))
		if code != Success {
			return code
		}
		copy(chunk(recvIdx), data)
	}
	return Success
}

// chunkOffsets splits elems into n nearly-equal chunks.
func chunkOffsets(elems, n int) []int {
	off := make([]int, n+1)
	base, rem := elems/n, elems%n
	for i := 0; i < n; i++ {
		sz := base
		if i < rem {
			sz++
		}
		off[i+1] = off[i] + sz
	}
	return off
}

// Gather is Open MPI's basic linear algorithm: everyone sends to the root.
func (p *Proc) Gather(sendbuf []byte, scount int, stype *Datatype,
	recvbuf []byte, rcount int, rtype *Datatype, root int, c *Comm) int {
	if c == nil {
		return ErrComm
	}
	if stype == nil || !stype.t.Committed() {
		return ErrType
	}
	if root < 0 || root >= c.Size() {
		return ErrRoot
	}
	n, me := c.Size(), c.myPos
	tag := p.nextTag(c)
	blockSz := scount * stype.t.Size()
	if me != root {
		packed, code := pack(stype, sendbuf, scount)
		if code != Success {
			return code
		}
		return p.csend(c, root, tag, packed)
	}
	if rtype == nil || !rtype.t.Committed() {
		return ErrType
	}
	if rcount*rtype.t.Size() != blockSz {
		return ErrTruncate
	}
	// Post all receives, then drain (nonblocking overlap).
	reqs := make([]*Request, n)
	for r := 0; r < n; r++ {
		if r == me {
			continue
		}
		reqs[r] = p.crecvPost(c, r, tag)
	}
	own, code := pack(stype, sendbuf, scount)
	if code != Success {
		return code
	}
	for r := 0; r < n; r++ {
		var data []byte
		if r == me {
			data = own
		} else {
			for !reqs[r].done {
				if code := p.progress(true); code != Success {
					return code
				}
			}
			if reqs[r].code != Success {
				return reqs[r].code
			}
			data = reqs[r].rawOut
		}
		if blockSz == 0 {
			continue
		}
		if _, err := rtype.t.Unpack(data, rcount, recvbuf[r*rcount*rtype.t.Extent():]); err != nil {
			return ErrBuffer
		}
	}
	return Success
}

// Scatter is the basic linear algorithm: the root sends each block.
func (p *Proc) Scatter(sendbuf []byte, scount int, stype *Datatype,
	recvbuf []byte, rcount int, rtype *Datatype, root int, c *Comm) int {
	if c == nil {
		return ErrComm
	}
	if rtype == nil || !rtype.t.Committed() {
		return ErrType
	}
	if root < 0 || root >= c.Size() {
		return ErrRoot
	}
	n, me := c.Size(), c.myPos
	tag := p.nextTag(c)
	blockSz := rcount * rtype.t.Size()
	if me == root {
		if stype == nil || !stype.t.Committed() {
			return ErrType
		}
		if scount*stype.t.Size() != blockSz {
			return ErrTruncate
		}
		var own []byte
		for r := 0; r < n; r++ {
			packed, code := pack(stype, sendbuf[r*scount*stype.t.Extent():], scount)
			if code != Success {
				return code
			}
			if r == me {
				own = packed
				continue
			}
			if code := p.csend(c, r, tag, packed); code != Success {
				return code
			}
		}
		if blockSz == 0 {
			return Success
		}
		if _, err := rtype.t.Unpack(own, rcount, recvbuf); err != nil {
			return ErrBuffer
		}
		return Success
	}
	data, code := p.crecv(c, root, tag)
	if code != Success {
		return code
	}
	if blockSz == 0 {
		return Success
	}
	if _, err := rtype.t.Unpack(data, rcount, recvbuf); err != nil {
		return ErrBuffer
	}
	return Success
}

// Allgather uses the Bruck algorithm for small blocks and a ring for
// large ones.
func (p *Proc) Allgather(sendbuf []byte, scount int, stype *Datatype,
	recvbuf []byte, rcount int, rtype *Datatype, c *Comm) int {
	if c == nil {
		return ErrComm
	}
	if stype == nil || !stype.t.Committed() || rtype == nil || !rtype.t.Committed() {
		return ErrType
	}
	n, me := c.Size(), c.myPos
	blockSz := scount * stype.t.Size()
	if rcount*rtype.t.Size() != blockSz {
		return ErrTruncate
	}
	region := make([]byte, n*blockSz)
	if blockSz > 0 {
		if _, err := stype.t.Pack(sendbuf, scount, region[me*blockSz:(me+1)*blockSz]); err != nil {
			return ErrBuffer
		}
	}
	tag := p.nextTag(c)
	if n > 1 && blockSz > 0 {
		var code int
		if blockSz <= allgatherBruckMax {
			code = p.allgatherBruck(c, region, blockSz, tag)
		} else {
			code = p.allgatherRing(c, region, blockSz, tag)
		}
		if code != Success {
			return code
		}
	}
	for r := 0; r < n; r++ {
		if blockSz == 0 {
			break
		}
		if _, err := rtype.t.Unpack(region[r*blockSz:(r+1)*blockSz], rcount,
			recvbuf[r*rcount*rtype.t.Extent():]); err != nil {
			return ErrBuffer
		}
	}
	return Success
}

// allgatherBruck doubles the known prefix each round; block j of the
// working buffer holds rank (me+j)'s contribution until the final rotate.
func (p *Proc) allgatherBruck(c *Comm, region []byte, blockSz int, tag int32) int {
	n, me := c.Size(), c.myPos
	tmp := make([]byte, n*blockSz)
	copy(tmp[:blockSz], region[me*blockSz:(me+1)*blockSz])
	cnt := 1
	round := int32(0)
	for cnt < n {
		transfer := cnt
		if n-cnt < transfer {
			transfer = n - cnt
		}
		to := (me - cnt + n) % n
		from := (me + cnt) % n
		data, code := p.cswap(c, to, from, tag+round, tmp[:transfer*blockSz])
		if code != Success {
			return code
		}
		copy(tmp[cnt*blockSz:(cnt+transfer)*blockSz], data)
		cnt += transfer
		round++
	}
	for j := 0; j < n; j++ {
		src := (me + j) % n
		copy(region[src*blockSz:(src+1)*blockSz], tmp[j*blockSz:(j+1)*blockSz])
	}
	return Success
}

func (p *Proc) allgatherRing(c *Comm, region []byte, blockSz int, tag int32) int {
	n, me := c.Size(), c.myPos
	right := (me + 1) % n
	left := (me - 1 + n) % n
	for s := 0; s < n-1; s++ {
		sendBlock := (me - s + n) % n
		recvBlock := (me - s - 1 + n) % n
		data, code := p.cswap(c, right, left, tag,
			region[sendBlock*blockSz:(sendBlock+1)*blockSz])
		if code != Success {
			return code
		}
		copy(region[recvBlock*blockSz:(recvBlock+1)*blockSz], data)
	}
	return Success
}

// alltoallBruckMax selects Bruck below (the tuned module's small-message
// choice) and basic linear with nonblocking overlap above. The thresholds
// and the linear algorithm differ from MPICH's Bruck/pairwise selection,
// giving the two implementations visibly different alltoall curves at
// medium sizes.
const alltoallBruckMax = 200

// Alltoall dispatches between the Bruck and basic-linear algorithms.
func (p *Proc) Alltoall(sendbuf []byte, scount int, stype *Datatype,
	recvbuf []byte, rcount int, rtype *Datatype, c *Comm) int {
	if c == nil {
		return ErrComm
	}
	if stype == nil || !stype.t.Committed() || rtype == nil || !rtype.t.Committed() {
		return ErrType
	}
	blockSz := scount * stype.t.Size()
	if rcount*rtype.t.Size() != blockSz {
		return ErrTruncate
	}
	if blockSz > 0 && blockSz <= alltoallBruckMax && c.Size() > 2 {
		return p.alltoallBruck(sendbuf, scount, stype, recvbuf, rcount, rtype, c)
	}
	return p.alltoallLinear(sendbuf, scount, stype, recvbuf, rcount, rtype, c)
}

// alltoallBruck is the log-round algorithm (see the mpich twin for the
// derivation); blocks rotate locally, move at power-of-two distances, and
// land at index (me-src+n)%n.
func (p *Proc) alltoallBruck(sendbuf []byte, scount int, stype *Datatype,
	recvbuf []byte, rcount int, rtype *Datatype, c *Comm) int {
	n, me := c.Size(), c.myPos
	blockSz := scount * stype.t.Size()
	tag := p.nextTag(c)
	tmp := make([]byte, n*blockSz)
	for i := 0; i < n; i++ {
		d := (me + i) % n
		if _, err := stype.t.Pack(sendbuf[d*scount*stype.t.Extent():], scount,
			tmp[i*blockSz:(i+1)*blockSz]); err != nil {
			return ErrBuffer
		}
	}
	round := int32(0)
	for pow := 1; pow < n; pow <<= 1 {
		var idxs []int
		for i := 0; i < n; i++ {
			if i&pow != 0 {
				idxs = append(idxs, i)
			}
		}
		send := make([]byte, 0, len(idxs)*blockSz)
		for _, i := range idxs {
			send = append(send, tmp[i*blockSz:(i+1)*blockSz]...)
		}
		to := (me + pow) % n
		from := (me - pow + n) % n
		data, code := p.cswap(c, to, from, tag+round, send)
		if code != Success {
			return code
		}
		for j, i := range idxs {
			copy(tmp[i*blockSz:(i+1)*blockSz], data[j*blockSz:(j+1)*blockSz])
		}
		round++
	}
	for s := 0; s < n; s++ {
		i := (me - s + n) % n
		if _, err := rtype.t.Unpack(tmp[i*blockSz:(i+1)*blockSz], rcount,
			recvbuf[s*rcount*rtype.t.Extent():]); err != nil {
			return ErrBuffer
		}
	}
	return Success
}

// alltoallLinear is the basic linear algorithm with nonblocking overlap:
// post every receive, start every send, then drain.
func (p *Proc) alltoallLinear(sendbuf []byte, scount int, stype *Datatype,
	recvbuf []byte, rcount int, rtype *Datatype, c *Comm) int {
	n, me := c.Size(), c.myPos
	blockSz := scount * stype.t.Size()
	tag := p.nextTag(c)
	reqs := make([]*Request, n)
	sends := make([]*Request, 0, n)
	for i := 1; i < n; i++ {
		from := (me - i + n) % n
		reqs[from] = p.crecvPost(c, from, tag)
	}
	ownPacked, code := pack(stype, sendbuf[me*scount*stype.t.Extent():], scount)
	if code != Success {
		return code
	}
	for i := 1; i < n; i++ {
		to := (me + i) % n
		packed, code := pack(stype, sendbuf[to*scount*stype.t.Extent():], scount)
		if code != Success {
			return code
		}
		if r := p.startSend(packed, c.ranks[to], tag, c.cid|collCIDBit); r != nil {
			sends = append(sends, r)
		}
	}
	unblock := func(r int, data []byte) int {
		if blockSz == 0 {
			return Success
		}
		if _, err := rtype.t.Unpack(data, rcount, recvbuf[r*rcount*rtype.t.Extent():]); err != nil {
			return ErrBuffer
		}
		return Success
	}
	if code := unblock(me, ownPacked); code != Success {
		return code
	}
	for r := 0; r < n; r++ {
		if r == me {
			continue
		}
		for !reqs[r].done {
			if code := p.progress(true); code != Success {
				return code
			}
		}
		if reqs[r].code != Success {
			return reqs[r].code
		}
		if code := unblock(r, reqs[r].rawOut); code != Success {
			return code
		}
	}
	for _, s := range sends {
		for !s.done {
			if code := p.progress(true); code != Success {
				return code
			}
		}
	}
	return Success
}
