package openmpi

import (
	"repro/internal/fabric"
)

// progress pulls and dispatches one envelope (Open MPI's opal_progress
// analog). Progress only runs inside MPI calls.
func (p *Proc) progress(block bool) int {
	var e *fabric.Envelope
	if block {
		if e = p.ep.Recv(); e == nil {
			return ErrOther
		}
	} else {
		var ok bool
		if e, ok = p.ep.TryRecv(); !ok {
			return Success
		}
	}
	switch e.Proto {
	case fabric.ProtoEager:
		if r := p.takeMatch(e); r != nil {
			p.complete(r, e.Src, e.Tag, e.Payload)
		} else {
			p.unexpected = append(p.unexpected, e)
		}
	case fabric.ProtoRTS:
		if r := p.takeMatch(e); r != nil {
			p.answerRTS(e, r)
		} else {
			p.unexpected = append(p.unexpected, e)
		}
	case fabric.ProtoCTS:
		if s, ok := p.pendingSend[e.Seq]; ok {
			delete(p.pendingSend, e.Seq)
			p.ep.Send(&fabric.Envelope{
				Dst: e.Src, CID: s.cid, Proto: fabric.ProtoData,
				Seq: e.Seq, Payload: s.payload,
			})
			s.payload = nil
			s.done = true
			s.code = Success
		}
	case fabric.ProtoData:
		key := seqKey{peer: e.Src, seq: e.Seq}
		if r, ok := p.awaitingData[key]; ok {
			delete(p.awaitingData, key)
			p.complete(r, e.Src, r.status.Tag, e.Payload)
		}
	}
	return Success
}

// matches applies Open MPI's matching rule (wildcards use this package's
// constant values).
func matches(r *Request, e *fabric.Envelope) bool {
	if e.CID != r.cid {
		return false
	}
	if r.srcWorld != AnySource && e.Src != r.srcWorld {
		return false
	}
	if r.tag != AnyTag && e.Tag != int32(r.tag) {
		return false
	}
	return true
}

// takeMatch removes and returns the oldest posted request matching e.
func (p *Proc) takeMatch(e *fabric.Envelope) *Request {
	for i, r := range p.posted {
		if matches(r, e) {
			p.posted = append(p.posted[:i], p.posted[i+1:]...)
			return r
		}
	}
	return nil
}

// takeUnexpected removes and returns the oldest unexpected envelope
// matching r.
func (p *Proc) takeUnexpected(r *Request) *fabric.Envelope {
	for i, e := range p.unexpected {
		if matches(r, e) {
			p.unexpected = append(p.unexpected[:i], p.unexpected[i+1:]...)
			return e
		}
	}
	return nil
}

// complete finishes a receive with the packed payload.
func (p *Proc) complete(r *Request, srcWorld int, tag int32, payload []byte) {
	r.status.Source = int32(srcWorld)
	if r.comm != nil {
		r.status.Source = int32(r.comm.posOf(srcWorld))
	}
	r.status.Tag = tag
	r.done = true
	if r.raw {
		r.rawOut = payload
		r.status.UCount = uint64(len(payload))
		r.code = Success
		r.status.Error = Success
		return
	}
	capacity := r.count * r.dt.t.Size()
	n := len(payload)
	if n > capacity {
		n = capacity
		r.code = ErrTruncate
	} else {
		r.code = Success
	}
	if _, err := r.dt.t.UnpackPartial(payload[:n], r.buf); err != nil {
		r.code = ErrIntern
	}
	r.status.UCount = uint64(n)
	r.status.Error = int32(r.code)
}

// answerRTS matches a rendezvous announcement with a posted receive.
func (p *Proc) answerRTS(e *fabric.Envelope, r *Request) {
	r.status.Tag = e.Tag
	p.awaitingData[seqKey{peer: e.Src, seq: e.Seq}] = r
	p.ep.Send(&fabric.Envelope{Dst: e.Src, CID: e.CID, Proto: fabric.ProtoCTS, Seq: e.Seq})
}

// post registers a receive, searching the unexpected queue first.
func (p *Proc) post(r *Request) {
	if e := p.takeUnexpected(r); e != nil {
		if e.Proto == fabric.ProtoRTS {
			p.answerRTS(e, r)
		} else {
			p.complete(r, e.Src, e.Tag, e.Payload)
		}
		return
	}
	p.posted = append(p.posted, r)
}

// startSend launches a send on an arbitrary context, returning a pending
// request on the rendezvous path or nil when the eager path completed.
func (p *Proc) startSend(packed []byte, destWorld int, tag int32, cid uint32) *Request {
	if len(packed) <= eagerLimit || destWorld == p.rank {
		p.ep.Send(&fabric.Envelope{
			Dst: destWorld, CID: cid, Tag: tag,
			Proto: fabric.ProtoEager, Payload: packed,
		})
		return nil
	}
	p.nextSeq++
	r := &Request{payload: packed, seq: p.nextSeq, cid: cid}
	p.pendingSend[p.nextSeq] = r
	p.ep.Send(&fabric.Envelope{
		Dst: destWorld, CID: cid, Tag: tag,
		Proto: fabric.ProtoRTS, Seq: p.nextSeq, Hdr: uint64(len(packed)),
	})
	return r
}

// checkPeerTag validates peer/tag arguments.
func checkPeerTag(c *Comm, peer, tag int, sending bool) int {
	if peer == ProcNull {
		return Success
	}
	if sending && (tag < 0 || tag > TagUB) {
		return ErrTag
	}
	if !sending && tag != AnyTag && (tag < 0 || tag > TagUB) {
		return ErrTag
	}
	if !sending && peer == AnySource {
		return Success
	}
	if peer < 0 || peer >= c.Size() {
		return ErrRank
	}
	return Success
}

func pack(dt *Datatype, buf []byte, count int) ([]byte, int) {
	if count == 0 {
		return nil, Success
	}
	out := make([]byte, count*dt.t.Size())
	if _, err := dt.t.Pack(buf, count, out); err != nil {
		return nil, ErrBuffer
	}
	return out, Success
}

// Send is blocking standard-mode MPI_Send.
func (p *Proc) Send(buf []byte, count int, dt *Datatype, dest, tag int, c *Comm) int {
	if c == nil {
		return ErrComm
	}
	if dt == nil || !dt.t.Committed() {
		return ErrType
	}
	if count < 0 {
		return ErrCount
	}
	if code := checkPeerTag(c, dest, tag, true); code != Success {
		return code
	}
	if dest == ProcNull {
		return Success
	}
	packed, code := pack(dt, buf, count)
	if code != Success {
		return code
	}
	r := p.startSend(packed, c.ranks[dest], int32(tag), c.cid)
	for r != nil && !r.done {
		if code := p.progress(true); code != Success {
			return code
		}
	}
	if r != nil {
		return r.code
	}
	return Success
}

// newRecv validates and builds a receive request (nil for PROC_NULL).
func (p *Proc) newRecv(buf []byte, count int, dt *Datatype, source, tag int, c *Comm) (*Request, int) {
	if c == nil {
		return nil, ErrComm
	}
	if dt == nil || !dt.t.Committed() {
		return nil, ErrType
	}
	if count < 0 {
		return nil, ErrCount
	}
	if code := checkPeerTag(c, source, tag, false); code != Success {
		return nil, code
	}
	if source == ProcNull {
		return nil, Success
	}
	srcWorld := AnySource
	if source != AnySource {
		srcWorld = c.ranks[source]
	}
	return &Request{
		isRecv: true, comm: c, buf: buf, count: count, dt: dt,
		srcWorld: srcWorld, tag: tag, cid: c.cid,
	}, Success
}

func procNullStatus(st *Status) {
	if st == nil {
		return
	}
	st.Source = ProcNull
	st.Tag = AnyTag
	st.Error = Success
	st.UCount = 0
}

// Recv is blocking MPI_Recv.
func (p *Proc) Recv(buf []byte, count int, dt *Datatype, source, tag int, c *Comm, st *Status) int {
	r, code := p.newRecv(buf, count, dt, source, tag, c)
	if code != Success {
		return code
	}
	if r == nil {
		procNullStatus(st)
		return Success
	}
	p.post(r)
	for !r.done {
		if code := p.progress(true); code != Success {
			return code
		}
	}
	if st != nil {
		*st = r.status
	}
	return r.code
}

// Isend is nonblocking MPI_Isend.
func (p *Proc) Isend(buf []byte, count int, dt *Datatype, dest, tag int, c *Comm) (*Request, int) {
	if c == nil {
		return nil, ErrComm
	}
	if dt == nil || !dt.t.Committed() {
		return nil, ErrType
	}
	if count < 0 {
		return nil, ErrCount
	}
	if code := checkPeerTag(c, dest, tag, true); code != Success {
		return nil, code
	}
	if dest == ProcNull {
		return &Request{done: true, code: Success}, Success
	}
	packed, code := pack(dt, buf, count)
	if code != Success {
		return nil, code
	}
	r := p.startSend(packed, c.ranks[dest], int32(tag), c.cid)
	if r == nil {
		r = &Request{done: true, code: Success}
	}
	return r, Success
}

// Irecv is nonblocking MPI_Irecv.
func (p *Proc) Irecv(buf []byte, count int, dt *Datatype, source, tag int, c *Comm) (*Request, int) {
	r, code := p.newRecv(buf, count, dt, source, tag, c)
	if code != Success {
		return nil, code
	}
	if r == nil {
		pn := &Request{isRecv: true, done: true, code: Success}
		procNullStatus(&pn.status)
		return pn, Success
	}
	p.post(r)
	return r, Success
}

// Wait completes one request.
func (p *Proc) Wait(r *Request, st *Status) int {
	if r == nil {
		procNullStatus(st)
		return Success
	}
	for !r.done {
		if code := p.progress(true); code != Success {
			return code
		}
	}
	if st != nil {
		*st = r.status
	}
	return r.code
}

// Test polls one request.
func (p *Proc) Test(r *Request, st *Status) (bool, int) {
	if r == nil {
		procNullStatus(st)
		return true, Success
	}
	if !r.done {
		if code := p.progress(false); code != Success {
			return false, code
		}
	}
	if !r.done {
		return false, Success
	}
	if st != nil {
		*st = r.status
	}
	return true, r.code
}

// Waitall completes a batch of requests.
func (p *Proc) Waitall(reqs []*Request, sts []Status) int {
	if sts != nil && len(sts) != len(reqs) {
		return ErrArg
	}
	rc := Success
	for i, r := range reqs {
		var st Status
		if code := p.Wait(r, &st); code != Success {
			rc = code
		}
		if sts != nil {
			sts[i] = st
		}
	}
	return rc
}

// Sendrecv posts the receive before sending, avoiding the exchange
// deadlock.
func (p *Proc) Sendrecv(sendbuf []byte, scount int, stype *Datatype, dest, stag int,
	recvbuf []byte, rcount int, rtype *Datatype, source, rtag int,
	c *Comm, st *Status) int {
	rr, code := p.Irecv(recvbuf, rcount, rtype, source, rtag, c)
	if code != Success {
		return code
	}
	if code := p.Send(sendbuf, scount, stype, dest, stag, c); code != Success {
		return code
	}
	return p.Wait(rr, st)
}
