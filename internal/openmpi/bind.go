package openmpi

import (
	"repro/internal/abi"
	"repro/internal/ops"
	"repro/internal/types"
)

// Binding adapts a Proc to the generic function-table shape. Open MPI's
// handles are pointers; since an opaque 64-bit slot cannot carry a Go
// pointer, the binding keeps a per-rank registry mapping slot values to
// objects — the moral equivalent of the pointer value itself. Constants
// resolve to Open MPI's native values and error codes map from Open MPI's
// table. As with the MPICH binding, an application bound this way is
// welded to this implementation; the Mukautuva shim is the portable path.
type Binding struct {
	p    *Proc
	objs map[uint64]any
	next uint64
}

// Fixed registry slots for predefined objects. Null handles of each class
// get distinct sentinel slots mapping to nil objects.
const (
	slotCommNull uint64 = iota + 1
	slotCommWorld
	slotCommSelf
	slotGroupNull
	slotGroupEmpty
	slotTypeNull
	slotOpNull
	slotReqNull
	slotTypeBase = 0x100 // + types.Kind
	slotOpBase   = 0x200 // + ops.Op
	slotDynBase  = 0x10000
)

// Bind wraps a Proc in its native function-table binding.
func Bind(p *Proc) *Binding {
	b := &Binding{p: p, objs: make(map[uint64]any), next: slotDynBase}
	b.objs[slotCommWorld] = p.CommWorld
	b.objs[slotCommSelf] = p.CommSelf
	b.objs[slotGroupEmpty] = &Group{MyPos: -1}
	for _, k := range types.Kinds() {
		b.objs[slotTypeBase+uint64(k)] = p.Type(k)
	}
	for _, op := range ops.Ops() {
		b.objs[slotOpBase+uint64(op)] = p.PredefOp(op)
	}
	return b
}

var _ abi.FuncTable = (*Binding)(nil)

// register stores an object and returns its slot. nil objects map to the
// class's null slot so MPI_COMM_NULL results round-trip.
func (b *Binding) register(obj any, nullSlot uint64) abi.Handle {
	switch v := obj.(type) {
	case *Comm:
		if v == nil {
			return abi.Handle(nullSlot)
		}
	case *Group:
		if v == nil {
			return abi.Handle(nullSlot)
		}
	case *Datatype:
		if v == nil {
			return abi.Handle(nullSlot)
		}
	case *Op:
		if v == nil {
			return abi.Handle(nullSlot)
		}
	case *Request:
		if v == nil {
			return abi.Handle(nullSlot)
		}
	}
	b.next++
	b.objs[b.next] = obj
	return abi.Handle(b.next)
}

func (b *Binding) comm(h abi.Handle) *Comm {
	c, _ := b.objs[uint64(h)].(*Comm)
	return c
}

func (b *Binding) group(h abi.Handle) *Group {
	g, _ := b.objs[uint64(h)].(*Group)
	return g
}

func (b *Binding) dtype(h abi.Handle) *Datatype {
	d, _ := b.objs[uint64(h)].(*Datatype)
	return d
}

func (b *Binding) op(h abi.Handle) *Op {
	o, _ := b.objs[uint64(h)].(*Op)
	return o
}

func (b *Binding) request(h abi.Handle) *Request {
	r, _ := b.objs[uint64(h)].(*Request)
	return r
}

// codeErr converts an Open MPI return code into an error with the standard
// class attached.
func codeErr(code int) error {
	if code == Success {
		return nil
	}
	return abi.Errorf(ClassOfCode(code), "openmpi", "%s", ErrorString(code))
}

// ClassOfCode maps Open MPI error codes to standard classes (exported for
// the wrap adapter).
func ClassOfCode(code int) abi.ErrClass {
	switch code {
	case Success:
		return abi.ErrSuccess
	case ErrBuffer:
		return abi.ErrBuffer
	case ErrCount:
		return abi.ErrCount
	case ErrType:
		return abi.ErrType
	case ErrTag:
		return abi.ErrTag
	case ErrComm:
		return abi.ErrComm
	case ErrRank:
		return abi.ErrRank
	case ErrRequest:
		return abi.ErrRequest
	case ErrRoot:
		return abi.ErrRoot
	case ErrGroup:
		return abi.ErrGroup
	case ErrOp:
		return abi.ErrOp
	case ErrArg:
		return abi.ErrArg
	case ErrTruncate:
		return abi.ErrTruncate
	case ErrIntern:
		return abi.ErrIntern
	case ErrProcFailed:
		return abi.ErrProcFailed
	case ErrRevoked:
		return abi.ErrRevoked
	default:
		return abi.ErrOther
	}
}

// CodeOfClass is the reverse direction: the Open MPI code a standard
// error class surfaces as (cross-implementation round-trip tests and
// future standard-to-native translators). Classes Open MPI's table does
// not distinguish (MPI_ERR_PENDING has no slot here) collapse to
// ErrOther.
func CodeOfClass(c abi.ErrClass) int {
	switch c {
	case abi.ErrSuccess:
		return Success
	case abi.ErrBuffer:
		return ErrBuffer
	case abi.ErrCount:
		return ErrCount
	case abi.ErrType:
		return ErrType
	case abi.ErrTag:
		return ErrTag
	case abi.ErrComm:
		return ErrComm
	case abi.ErrRank:
		return ErrRank
	case abi.ErrRequest:
		return ErrRequest
	case abi.ErrRoot:
		return ErrRoot
	case abi.ErrGroup:
		return ErrGroup
	case abi.ErrOp:
		return ErrOp
	case abi.ErrArg:
		return ErrArg
	case abi.ErrTruncate:
		return ErrTruncate
	case abi.ErrIntern:
		return ErrIntern
	case abi.ErrProcFailed:
		return ErrProcFailed
	case abi.ErrRevoked:
		return ErrRevoked
	default:
		return ErrOther
	}
}

// statusOut converts Open MPI's status layout into the standard layout.
func statusOut(os *Status, as *abi.Status) {
	if as == nil {
		return
	}
	as.Source = os.Source
	as.Tag = os.Tag
	as.Error = os.Error
	as.CountBytes = os.UCount
	as.Cancelled = os.Cancelled
}

// ImplName identifies the lower library.
func (b *Binding) ImplName() string { return "openmpi" }

// Lookup resolves predefined constants to registry slots.
func (b *Binding) Lookup(s abi.Sym) abi.Handle {
	switch s {
	case abi.SymCommWorld:
		return abi.Handle(slotCommWorld)
	case abi.SymCommSelf:
		return abi.Handle(slotCommSelf)
	case abi.SymCommNull:
		return abi.Handle(slotCommNull)
	case abi.SymGroupNull:
		return abi.Handle(slotGroupNull)
	case abi.SymGroupEmpty:
		return abi.Handle(slotGroupEmpty)
	case abi.SymTypeNull:
		return abi.Handle(slotTypeNull)
	case abi.SymOpNull:
		return abi.Handle(slotOpNull)
	case abi.SymRequestNull:
		return abi.Handle(slotReqNull)
	}
	if k, ok := abi.KindForSym(s); ok {
		return abi.Handle(slotTypeBase + uint64(k))
	}
	if op, ok := abi.OpForSym(s); ok {
		return abi.Handle(slotOpBase + uint64(op))
	}
	return abi.Handle(slotTypeNull)
}

// LookupInt resolves integer constants to Open MPI's values.
func (b *Binding) LookupInt(s abi.IntSym) int {
	switch s {
	case abi.IntAnySource:
		return AnySource
	case abi.IntAnyTag:
		return AnyTag
	case abi.IntProcNull:
		return ProcNull
	case abi.IntRoot:
		return Root
	case abi.IntUndefined:
		return Undefined
	case abi.IntTagUB:
		return TagUB
	}
	return Undefined
}

func (b *Binding) Send(buf []byte, count int, dtype abi.Handle, dest, tag int, comm abi.Handle) error {
	return codeErr(b.p.Send(buf, count, b.dtype(dtype), dest, tag, b.comm(comm)))
}

func (b *Binding) Recv(buf []byte, count int, dtype abi.Handle, source, tag int, comm abi.Handle, st *abi.Status) error {
	var os Status
	code := b.p.Recv(buf, count, b.dtype(dtype), source, tag, b.comm(comm), &os)
	statusOut(&os, st)
	return codeErr(code)
}

func (b *Binding) Isend(buf []byte, count int, dtype abi.Handle, dest, tag int, comm abi.Handle) (abi.Handle, error) {
	r, code := b.p.Isend(buf, count, b.dtype(dtype), dest, tag, b.comm(comm))
	if code != Success {
		return abi.Handle(slotReqNull), codeErr(code)
	}
	return b.register(r, slotReqNull), nil
}

func (b *Binding) Irecv(buf []byte, count int, dtype abi.Handle, source, tag int, comm abi.Handle) (abi.Handle, error) {
	r, code := b.p.Irecv(buf, count, b.dtype(dtype), source, tag, b.comm(comm))
	if code != Success {
		return abi.Handle(slotReqNull), codeErr(code)
	}
	return b.register(r, slotReqNull), nil
}

func (b *Binding) Wait(req abi.Handle, st *abi.Status) error {
	var os Status
	r := b.request(req)
	code := b.p.Wait(r, &os)
	statusOut(&os, st)
	if r != nil {
		delete(b.objs, uint64(req))
	}
	return codeErr(code)
}

func (b *Binding) Test(req abi.Handle, st *abi.Status) (bool, error) {
	var os Status
	r := b.request(req)
	done, code := b.p.Test(r, &os)
	if done {
		statusOut(&os, st)
		if r != nil {
			delete(b.objs, uint64(req))
		}
	}
	return done, codeErr(code)
}

func (b *Binding) Waitall(reqs []abi.Handle, sts []abi.Status) error {
	native := make([]*Request, len(reqs))
	for i, h := range reqs {
		native[i] = b.request(h)
	}
	var os []Status
	if sts != nil {
		os = make([]Status, len(reqs))
	}
	code := b.p.Waitall(native, os)
	for i := range os {
		statusOut(&os[i], &sts[i])
	}
	for _, h := range reqs {
		delete(b.objs, uint64(h))
	}
	return codeErr(code)
}

func (b *Binding) Sendrecv(sendbuf []byte, scount int, stype abi.Handle, dest, stag int,
	recvbuf []byte, rcount int, rtype abi.Handle, source, rtag int,
	comm abi.Handle, st *abi.Status) error {
	var os Status
	code := b.p.Sendrecv(sendbuf, scount, b.dtype(stype), dest, stag,
		recvbuf, rcount, b.dtype(rtype), source, rtag, b.comm(comm), &os)
	statusOut(&os, st)
	return codeErr(code)
}

func (b *Binding) Probe(source, tag int, comm abi.Handle, st *abi.Status) error {
	var os Status
	code := b.p.Probe(source, tag, b.comm(comm), &os)
	statusOut(&os, st)
	return codeErr(code)
}

func (b *Binding) Iprobe(source, tag int, comm abi.Handle, st *abi.Status) (bool, error) {
	var os Status
	found, code := b.p.Iprobe(source, tag, b.comm(comm), &os)
	if found {
		statusOut(&os, st)
	}
	return found, codeErr(code)
}

func (b *Binding) Barrier(comm abi.Handle) error {
	return codeErr(b.p.Barrier(b.comm(comm)))
}

func (b *Binding) Bcast(buf []byte, count int, dtype abi.Handle, root int, comm abi.Handle) error {
	return codeErr(b.p.Bcast(buf, count, b.dtype(dtype), root, b.comm(comm)))
}

func (b *Binding) Reduce(sendbuf, recvbuf []byte, count int, dtype, op abi.Handle, root int, comm abi.Handle) error {
	return codeErr(b.p.Reduce(sendbuf, recvbuf, count, b.dtype(dtype), b.op(op), root, b.comm(comm)))
}

func (b *Binding) Allreduce(sendbuf, recvbuf []byte, count int, dtype, op abi.Handle, comm abi.Handle) error {
	return codeErr(b.p.Allreduce(sendbuf, recvbuf, count, b.dtype(dtype), b.op(op), b.comm(comm)))
}

func (b *Binding) Gather(sendbuf []byte, scount int, stype abi.Handle,
	recvbuf []byte, rcount int, rtype abi.Handle, root int, comm abi.Handle) error {
	return codeErr(b.p.Gather(sendbuf, scount, b.dtype(stype),
		recvbuf, rcount, b.dtype(rtype), root, b.comm(comm)))
}

func (b *Binding) Allgather(sendbuf []byte, scount int, stype abi.Handle,
	recvbuf []byte, rcount int, rtype abi.Handle, comm abi.Handle) error {
	return codeErr(b.p.Allgather(sendbuf, scount, b.dtype(stype),
		recvbuf, rcount, b.dtype(rtype), b.comm(comm)))
}

func (b *Binding) Scatter(sendbuf []byte, scount int, stype abi.Handle,
	recvbuf []byte, rcount int, rtype abi.Handle, root int, comm abi.Handle) error {
	return codeErr(b.p.Scatter(sendbuf, scount, b.dtype(stype),
		recvbuf, rcount, b.dtype(rtype), root, b.comm(comm)))
}

func (b *Binding) Alltoall(sendbuf []byte, scount int, stype abi.Handle,
	recvbuf []byte, rcount int, rtype abi.Handle, comm abi.Handle) error {
	return codeErr(b.p.Alltoall(sendbuf, scount, b.dtype(stype),
		recvbuf, rcount, b.dtype(rtype), b.comm(comm)))
}

func (b *Binding) CommSize(comm abi.Handle) (int, error) {
	n, code := b.p.CommSize(b.comm(comm))
	return n, codeErr(code)
}

func (b *Binding) CommRank(comm abi.Handle) (int, error) {
	r, code := b.p.CommRank(b.comm(comm))
	return r, codeErr(code)
}

func (b *Binding) CommDup(comm abi.Handle) (abi.Handle, error) {
	nc, code := b.p.CommDup(b.comm(comm))
	if code != Success {
		return abi.Handle(slotCommNull), codeErr(code)
	}
	return b.register(nc, slotCommNull), nil
}

func (b *Binding) CommSplit(comm abi.Handle, color, key int) (abi.Handle, error) {
	nc, code := b.p.CommSplit(b.comm(comm), color, key)
	if code != Success {
		return abi.Handle(slotCommNull), codeErr(code)
	}
	return b.register(nc, slotCommNull), nil
}

func (b *Binding) CommCreate(comm, group abi.Handle) (abi.Handle, error) {
	nc, code := b.p.CommCreate(b.comm(comm), b.group(group))
	if code != Success {
		return abi.Handle(slotCommNull), codeErr(code)
	}
	return b.register(nc, slotCommNull), nil
}

func (b *Binding) CommGroup(comm abi.Handle) (abi.Handle, error) {
	g, code := b.p.CommGroup(b.comm(comm))
	if code != Success {
		return abi.Handle(slotGroupNull), codeErr(code)
	}
	return b.register(g, slotGroupNull), nil
}

func (b *Binding) CommFree(comm abi.Handle) error {
	c := b.comm(comm)
	code := b.p.CommFree(c)
	if code == Success {
		delete(b.objs, uint64(comm))
	}
	return codeErr(code)
}

func (b *Binding) GroupSize(group abi.Handle) (int, error) {
	n, code := b.p.GroupSize(b.group(group))
	return n, codeErr(code)
}

func (b *Binding) GroupRank(group abi.Handle) (int, error) {
	r, code := b.p.GroupRank(b.group(group))
	return r, codeErr(code)
}

func (b *Binding) GroupIncl(group abi.Handle, ranks []int) (abi.Handle, error) {
	g, code := b.p.GroupIncl(b.group(group), ranks)
	if code != Success {
		return abi.Handle(slotGroupNull), codeErr(code)
	}
	return b.register(g, slotGroupNull), nil
}

func (b *Binding) GroupExcl(group abi.Handle, ranks []int) (abi.Handle, error) {
	g, code := b.p.GroupExcl(b.group(group), ranks)
	if code != Success {
		return abi.Handle(slotGroupNull), codeErr(code)
	}
	return b.register(g, slotGroupNull), nil
}

func (b *Binding) GroupTranslateRanks(g1 abi.Handle, ranks []int, g2 abi.Handle) ([]int, error) {
	out, code := b.p.GroupTranslateRanks(b.group(g1), ranks, b.group(g2))
	return out, codeErr(code)
}

func (b *Binding) GroupFree(group abi.Handle) error {
	code := b.p.GroupFree(b.group(group))
	if code == Success {
		delete(b.objs, uint64(group))
	}
	return codeErr(code)
}

func (b *Binding) TypeContiguous(count int, inner abi.Handle) (abi.Handle, error) {
	dt, code := b.p.TypeContiguous(count, b.dtype(inner))
	if code != Success {
		return abi.Handle(slotTypeNull), codeErr(code)
	}
	return b.register(dt, slotTypeNull), nil
}

func (b *Binding) TypeVector(count, blocklen, stride int, inner abi.Handle) (abi.Handle, error) {
	dt, code := b.p.TypeVector(count, blocklen, stride, b.dtype(inner))
	if code != Success {
		return abi.Handle(slotTypeNull), codeErr(code)
	}
	return b.register(dt, slotTypeNull), nil
}

func (b *Binding) TypeIndexed(blocklens, displs []int, inner abi.Handle) (abi.Handle, error) {
	dt, code := b.p.TypeIndexed(blocklens, displs, b.dtype(inner))
	if code != Success {
		return abi.Handle(slotTypeNull), codeErr(code)
	}
	return b.register(dt, slotTypeNull), nil
}

func (b *Binding) TypeCreateStruct(blocklens, displs []int, typs []abi.Handle) (abi.Handle, error) {
	native := make([]*Datatype, len(typs))
	for i, t := range typs {
		native[i] = b.dtype(t)
	}
	dt, code := b.p.TypeCreateStruct(blocklens, displs, native)
	if code != Success {
		return abi.Handle(slotTypeNull), codeErr(code)
	}
	return b.register(dt, slotTypeNull), nil
}

func (b *Binding) TypeCommit(dtype abi.Handle) error {
	return codeErr(b.p.TypeCommit(b.dtype(dtype)))
}

func (b *Binding) TypeFree(dtype abi.Handle) error {
	code := b.p.TypeFree(b.dtype(dtype))
	if code == Success {
		delete(b.objs, uint64(dtype))
	}
	return codeErr(code)
}

func (b *Binding) TypeSize(dtype abi.Handle) (int, error) {
	n, code := b.p.TypeSize(b.dtype(dtype))
	return n, codeErr(code)
}

func (b *Binding) TypeExtent(dtype abi.Handle) (int, error) {
	n, code := b.p.TypeExtent(b.dtype(dtype))
	return n, codeErr(code)
}

func (b *Binding) GetCount(st *abi.Status, dtype abi.Handle) (int, error) {
	os := Status{UCount: st.CountBytes}
	n, code := b.p.GetCount(&os, b.dtype(dtype))
	return n, codeErr(code)
}

func (b *Binding) OpCreate(name string, commute bool) (abi.Handle, error) {
	o, code := b.p.OpCreate(name, commute)
	if code != Success {
		return abi.Handle(slotOpNull), codeErr(code)
	}
	return b.register(o, slotOpNull), nil
}

func (b *Binding) OpFree(op abi.Handle) error {
	code := b.p.OpFree(b.op(op))
	if code == Success {
		delete(b.objs, uint64(op))
	}
	return codeErr(code)
}

func (b *Binding) Abort(comm abi.Handle, code int) error {
	return codeErr(b.p.Abort(code))
}

func (b *Binding) CommRevoke(comm abi.Handle) error {
	return codeErr(b.p.CommRevoke(b.comm(comm)))
}

func (b *Binding) CommShrink(comm abi.Handle) (abi.Handle, error) {
	nc, code := b.p.CommShrink(b.comm(comm))
	if code != Success {
		return abi.Handle(slotCommNull), codeErr(code)
	}
	return b.register(nc, slotCommNull), nil
}

func (b *Binding) CommAgree(comm abi.Handle, flag uint64) (uint64, error) {
	out, code := b.p.CommAgree(b.comm(comm), flag)
	return out, codeErr(code)
}

func (b *Binding) CommFailureAck(comm abi.Handle) error {
	return codeErr(b.p.CommFailureAck(b.comm(comm)))
}

func (b *Binding) CommFailureGetAcked(comm abi.Handle) (abi.Handle, error) {
	g, code := b.p.CommFailureGetAcked(b.comm(comm))
	if code != Success {
		return abi.Handle(slotGroupNull), codeErr(code)
	}
	return b.register(g, slotGroupNull), nil
}
