package openmpi

import (
	"repro/internal/mpicore"
)

// This file is Open MPI's public MPI surface. Handles are the runtime
// objects themselves (pointer ABI), so most calls delegate directly; the
// only translation left is the status layout. The runtime was constructed
// with Open MPI's constant and error-code tables, so codes and sentinels
// come back already in this package's vocabulary.

// Send is blocking standard-mode MPI_Send.
func (p *Proc) Send(buf []byte, count int, dt *Datatype, dest, tag int, c *Comm) int {
	return p.rt.Send(buf, count, dt, dest, tag, c)
}

// Recv is blocking MPI_Recv.
func (p *Proc) Recv(buf []byte, count int, dt *Datatype, source, tag int, c *Comm, st *Status) int {
	var cs mpicore.Status
	code := p.rt.Recv(buf, count, dt, source, tag, c, &cs)
	if st != nil {
		*st = nativeStatus(&cs)
	}
	return code
}

// Isend is nonblocking MPI_Isend.
func (p *Proc) Isend(buf []byte, count int, dt *Datatype, dest, tag int, c *Comm) (*Request, int) {
	return p.rt.Isend(buf, count, dt, dest, tag, c)
}

// Irecv is nonblocking MPI_Irecv.
func (p *Proc) Irecv(buf []byte, count int, dt *Datatype, source, tag int, c *Comm) (*Request, int) {
	return p.rt.Irecv(buf, count, dt, source, tag, c)
}

// Wait completes one request.
func (p *Proc) Wait(r *Request, st *Status) int {
	var cs mpicore.Status
	code := p.rt.Wait(r, &cs)
	if st != nil && (r == nil || r.Done()) {
		*st = nativeStatus(&cs)
	}
	return code
}

// Test polls one request.
func (p *Proc) Test(r *Request, st *Status) (bool, int) {
	var cs mpicore.Status
	done, code := p.rt.Test(r, &cs)
	if done && st != nil {
		*st = nativeStatus(&cs)
	}
	return done, code
}

// Waitall completes a batch of requests.
func (p *Proc) Waitall(reqs []*Request, sts []Status) int {
	if sts != nil && len(sts) != len(reqs) {
		return ErrArg
	}
	rc := Success
	for i, r := range reqs {
		var st Status
		if code := p.Wait(r, &st); code != Success {
			rc = code
		}
		if sts != nil {
			sts[i] = st
		}
	}
	return rc
}

// Sendrecv posts the receive before sending, avoiding the exchange
// deadlock.
func (p *Proc) Sendrecv(sendbuf []byte, scount int, stype *Datatype, dest, stag int,
	recvbuf []byte, rcount int, rtype *Datatype, source, rtag int,
	c *Comm, st *Status) int {
	var cs mpicore.Status
	code := p.rt.Sendrecv(sendbuf, scount, stype, dest, stag,
		recvbuf, rcount, rtype, source, rtag, c, &cs)
	if st != nil {
		*st = nativeStatus(&cs)
	}
	return code
}

// Probe mirrors MPI_Probe.
func (p *Proc) Probe(source, tag int, c *Comm, st *Status) int {
	var cs mpicore.Status
	code := p.rt.Probe(source, tag, c, &cs)
	if code == Success && st != nil {
		*st = nativeStatus(&cs)
	}
	return code
}

// Iprobe mirrors MPI_Iprobe.
func (p *Proc) Iprobe(source, tag int, c *Comm, st *Status) (bool, int) {
	var cs mpicore.Status
	found, code := p.rt.Iprobe(source, tag, c, &cs)
	if found && st != nil {
		*st = nativeStatus(&cs)
	}
	return found, code
}

// Barrier uses recursive doubling with a fold for non-power-of-two sizes
// (Open MPI's tuned default for mid-size communicators).
func (p *Proc) Barrier(c *Comm) int { return p.rt.Barrier(c) }

// Bcast uses a binary tree for short messages and a pipelined chain for
// long ones.
func (p *Proc) Bcast(buf []byte, count int, dt *Datatype, root int, c *Comm) int {
	return p.rt.Bcast(buf, count, dt, root, c)
}

// Reduce folds up an in-order binary tree over relative ranks.
func (p *Proc) Reduce(sendbuf, recvbuf []byte, count int, dt *Datatype, o *Op, root int, c *Comm) int {
	return p.rt.Reduce(sendbuf, recvbuf, count, dt, o, root, c)
}

// Allreduce uses recursive doubling for short messages and the classic
// ring (reduce-scatter + allgather) for long ones.
func (p *Proc) Allreduce(sendbuf, recvbuf []byte, count int, dt *Datatype, o *Op, c *Comm) int {
	return p.rt.Allreduce(sendbuf, recvbuf, count, dt, o, c)
}

// Gather is Open MPI's basic linear algorithm with nonblocking overlap.
func (p *Proc) Gather(sendbuf []byte, scount int, stype *Datatype,
	recvbuf []byte, rcount int, rtype *Datatype, root int, c *Comm) int {
	return p.rt.Gather(sendbuf, scount, stype, recvbuf, rcount, rtype, root, c)
}

// Scatter is the basic linear algorithm: the root sends each block.
func (p *Proc) Scatter(sendbuf []byte, scount int, stype *Datatype,
	recvbuf []byte, rcount int, rtype *Datatype, root int, c *Comm) int {
	return p.rt.Scatter(sendbuf, scount, stype, recvbuf, rcount, rtype, root, c)
}

// Allgather uses the Bruck algorithm for small blocks and a ring for
// large ones.
func (p *Proc) Allgather(sendbuf []byte, scount int, stype *Datatype,
	recvbuf []byte, rcount int, rtype *Datatype, c *Comm) int {
	return p.rt.Allgather(sendbuf, scount, stype, recvbuf, rcount, rtype, c)
}

// Alltoall dispatches between the Bruck and basic-linear algorithms.
func (p *Proc) Alltoall(sendbuf []byte, scount int, stype *Datatype,
	recvbuf []byte, rcount int, rtype *Datatype, c *Comm) int {
	return p.rt.Alltoall(sendbuf, scount, stype, recvbuf, rcount, rtype, c)
}

// CommSize mirrors MPI_Comm_size.
func (p *Proc) CommSize(c *Comm) (int, int) {
	if c == nil {
		return 0, ErrComm
	}
	return c.Size(), Success
}

// CommRank mirrors MPI_Comm_rank.
func (p *Proc) CommRank(c *Comm) (int, int) {
	if c == nil {
		return 0, ErrComm
	}
	return c.MyPos, Success
}

// CommDup duplicates a communicator (collective).
func (p *Proc) CommDup(c *Comm) (*Comm, int) { return p.rt.CommDup(c) }

// CommSplit partitions a communicator by color/key (collective).
func (p *Proc) CommSplit(c *Comm, color, key int) (*Comm, int) {
	return p.rt.CommSplit(c, color, key)
}

// CommCreate builds a communicator from a subgroup (collective over the
// parent); non-members receive nil.
func (p *Proc) CommCreate(c *Comm, g *Group) (*Comm, int) { return p.rt.CommCreate(c, g) }

// CommGroup extracts a communicator's group.
func (p *Proc) CommGroup(c *Comm) (*Group, int) { return p.rt.CommGroup(c) }

// CommFree releases a communicator. Predefined communicators are
// protected.
func (p *Proc) CommFree(c *Comm) int { return p.rt.CommFree(c) }

// GroupSize mirrors MPI_Group_size.
func (p *Proc) GroupSize(g *Group) (int, int) { return p.rt.GroupSize(g) }

// GroupRank mirrors MPI_Group_rank.
func (p *Proc) GroupRank(g *Group) (int, int) { return p.rt.GroupRank(g) }

// GroupIncl selects listed ranks into a new group.
func (p *Proc) GroupIncl(g *Group, ranksIn []int) (*Group, int) {
	return p.rt.GroupIncl(g, ranksIn)
}

// GroupExcl removes listed ranks from a group.
func (p *Proc) GroupExcl(g *Group, ranksOut []int) (*Group, int) {
	return p.rt.GroupExcl(g, ranksOut)
}

// GroupTranslateRanks maps ranks between groups.
func (p *Proc) GroupTranslateRanks(a *Group, ranks []int, b *Group) ([]int, int) {
	return p.rt.GroupTranslateRanks(a, ranks, b)
}

// GroupFree releases a group (no-op for the GC, kept for API fidelity).
func (p *Proc) GroupFree(g *Group) int {
	if g == nil {
		return ErrGroup
	}
	return Success
}

// TypeContiguous mirrors MPI_Type_contiguous.
func (p *Proc) TypeContiguous(count int, inner *Datatype) (*Datatype, int) {
	return p.rt.TypeContiguous(count, inner)
}

// TypeVector mirrors MPI_Type_vector.
func (p *Proc) TypeVector(count, blocklen, stride int, inner *Datatype) (*Datatype, int) {
	return p.rt.TypeVector(count, blocklen, stride, inner)
}

// TypeIndexed mirrors MPI_Type_indexed.
func (p *Proc) TypeIndexed(blocklens, displs []int, inner *Datatype) (*Datatype, int) {
	return p.rt.TypeIndexed(blocklens, displs, inner)
}

// TypeCreateStruct mirrors MPI_Type_create_struct.
func (p *Proc) TypeCreateStruct(blocklens, displs []int, typs []*Datatype) (*Datatype, int) {
	return p.rt.TypeCreateStruct(blocklens, displs, typs)
}

// TypeCommit mirrors MPI_Type_commit.
func (p *Proc) TypeCommit(dt *Datatype) int { return p.rt.TypeCommit(dt) }

// TypeFree releases a datatype; predefined types are protected.
func (p *Proc) TypeFree(dt *Datatype) int { return p.rt.TypeFree(dt) }

// TypeSize mirrors MPI_Type_size.
func (p *Proc) TypeSize(dt *Datatype) (int, int) { return p.rt.TypeSize(dt) }

// TypeExtent mirrors MPI_Type_get_extent.
func (p *Proc) TypeExtent(dt *Datatype) (int, int) { return p.rt.TypeExtent(dt) }

// GetCount mirrors MPI_Get_count.
func (p *Proc) GetCount(st *Status, dt *Datatype) (int, int) {
	return p.rt.GetCount(st.UCount, dt)
}

// OpCreate registers a user reduction operator by registry name.
func (p *Proc) OpCreate(name string, commute bool) (*Op, int) {
	return p.rt.OpCreate(name, commute)
}

// OpFree releases a user operator; predefined operators are protected.
func (p *Proc) OpFree(o *Op) int { return p.rt.OpFree(o) }

// CommRevoke mirrors MPIX_Comm_revoke.
func (p *Proc) CommRevoke(c *Comm) int { return p.rt.CommRevoke(c) }

// CommShrink mirrors MPIX_Comm_shrink: derive a survivors-only
// communicator fault-tolerantly (works on revoked communicators).
func (p *Proc) CommShrink(c *Comm) (*Comm, int) { return p.rt.CommShrink(c) }

// CommAgree mirrors MPIX_Comm_agree: fault-tolerant agreement returning
// the bitwise AND of living participants' flags.
func (p *Proc) CommAgree(c *Comm, flag uint64) (uint64, int) {
	return p.rt.CommAgree(c, flag)
}

// CommFailureAck mirrors MPIX_Comm_failure_ack.
func (p *Proc) CommFailureAck(c *Comm) int { return p.rt.CommFailureAck(c) }

// CommFailureGetAcked mirrors MPIX_Comm_failure_get_acked.
func (p *Proc) CommFailureGetAcked(c *Comm) (*Group, int) {
	return p.rt.CommFailureGetAcked(c)
}
