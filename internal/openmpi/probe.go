package openmpi

import "repro/internal/fabric"

// scanPending looks for the oldest unexpected envelope matching the probe
// without consuming it.
func (p *Proc) scanPending(c *Comm, srcWorld, tag int, st *Status) bool {
	probe := &Request{comm: c, srcWorld: srcWorld, tag: tag, cid: c.cid}
	for _, e := range p.unexpected {
		if e.Proto != fabric.ProtoEager && e.Proto != fabric.ProtoRTS {
			continue
		}
		if !matches(probe, e) {
			continue
		}
		if st != nil {
			st.Source = int32(c.posOf(e.Src))
			st.Tag = e.Tag
			st.Error = Success
			if e.Proto == fabric.ProtoRTS {
				st.UCount = e.Hdr
			} else {
				st.UCount = uint64(len(e.Payload))
			}
		}
		return true
	}
	return false
}

func (p *Proc) probeArgs(source, tag int, c *Comm) (int, bool, int) {
	if c == nil {
		return 0, false, ErrComm
	}
	if code := checkPeerTag(c, source, tag, false); code != Success {
		return 0, false, code
	}
	if source == ProcNull {
		return 0, false, Success
	}
	srcWorld := AnySource
	if source != AnySource {
		srcWorld = c.ranks[source]
	}
	return srcWorld, true, Success
}

// Probe mirrors MPI_Probe.
func (p *Proc) Probe(source, tag int, c *Comm, st *Status) int {
	srcWorld, real, code := p.probeArgs(source, tag, c)
	if code != Success {
		return code
	}
	if !real {
		procNullStatus(st)
		return Success
	}
	for !p.scanPending(c, srcWorld, tag, st) {
		if code := p.progress(true); code != Success {
			return code
		}
	}
	return Success
}

// Iprobe mirrors MPI_Iprobe.
func (p *Proc) Iprobe(source, tag int, c *Comm, st *Status) (bool, int) {
	srcWorld, real, code := p.probeArgs(source, tag, c)
	if code != Success {
		return false, code
	}
	if !real {
		procNullStatus(st)
		return true, Success
	}
	if p.scanPending(c, srcWorld, tag, st) {
		return true, Success
	}
	if code := p.progress(false); code != Success {
		return false, code
	}
	return p.scanPending(c, srcWorld, tag, st), Success
}
